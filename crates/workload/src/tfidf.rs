//! TF-IDF vectorization over the reserved-word vocabulary.

use crate::tokenizer::{reserved_word_index, RESERVED_WORDS};

/// A fitted TF-IDF vectorizer over [`RESERVED_WORDS`].
///
/// The vocabulary is fixed and small, so vectors are dense. IDF uses the
/// smoothed formulation `ln((1 + N) / (1 + df)) + 1`, which never zeroes a
/// term out entirely.
#[derive(Debug, Clone)]
pub struct TfIdfVectorizer {
    idf: Vec<f64>,
    n_documents: usize,
}

impl TfIdfVectorizer {
    /// Vocabulary size.
    pub const VOCAB: usize = RESERVED_WORDS.len();

    /// Fits IDF weights on a corpus of token lists (one list per query).
    pub fn fit<S: AsRef<str>>(corpus: &[Vec<S>]) -> Self {
        let n = corpus.len();
        let mut df = vec![0usize; Self::VOCAB];
        for doc in corpus {
            let mut seen = [false; Self::VOCAB];
            for tok in doc {
                if let Some(i) = reserved_word_index(tok.as_ref()) {
                    seen[i] = true;
                }
            }
            for (i, s) in seen.iter().enumerate() {
                if *s {
                    df[i] += 1;
                }
            }
        }
        let idf = df
            .iter()
            .map(|&d| ((1.0 + n as f64) / (1.0 + d as f64)).ln() + 1.0)
            .collect();
        TfIdfVectorizer { idf, n_documents: n }
    }

    /// Number of documents the vectorizer was fitted on.
    pub fn n_documents(&self) -> usize {
        self.n_documents
    }

    /// Transforms a token list into an L2-normalized TF-IDF vector.
    pub fn transform<S: AsRef<str>>(&self, tokens: &[S]) -> Vec<f64> {
        let mut tf = vec![0.0; Self::VOCAB];
        for tok in tokens {
            if let Some(i) = reserved_word_index(tok.as_ref()) {
                tf[i] += 1.0;
            }
        }
        let total: f64 = tf.iter().sum();
        if total > 0.0 {
            for (v, idf) in tf.iter_mut().zip(&self.idf) {
                *v = (*v / total) * idf;
            }
        }
        let norm = tf.iter().map(|v| v * v).sum::<f64>().sqrt();
        if norm > 0.0 {
            for v in &mut tf {
                *v /= norm;
            }
        }
        tf
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenizer::extract_reserved_words;

    fn corpus() -> Vec<Vec<&'static str>> {
        vec![
            extract_reserved_words("SELECT a FROM t WHERE x = 1"),
            extract_reserved_words("SELECT b FROM t WHERE y = 2 ORDER BY b"),
            extract_reserved_words("INSERT INTO t VALUES (1)"),
            extract_reserved_words("UPDATE t SET a = 1 WHERE x = 2"),
        ]
    }

    #[test]
    fn vectors_are_unit_norm() {
        let v = TfIdfVectorizer::fit(&corpus());
        let x = v.transform(&extract_reserved_words("SELECT a FROM t"));
        let norm: f64 = x.iter().map(|v| v * v).sum::<f64>().sqrt();
        assert!((norm - 1.0).abs() < 1e-9);
    }

    #[test]
    fn rare_terms_get_higher_weight_than_common_terms() {
        let v = TfIdfVectorizer::fit(&corpus());
        // SELECT appears in 2/4 docs, ORDER in 1/4: a doc containing both once
        // should weight ORDER higher.
        let x = v.transform(&["SELECT", "ORDER"]);
        let i_select = crate::tokenizer::reserved_word_index("SELECT").unwrap();
        let i_order = crate::tokenizer::reserved_word_index("ORDER").unwrap();
        assert!(x[i_order] > x[i_select]);
    }

    #[test]
    fn empty_document_transforms_to_zero_vector() {
        let v = TfIdfVectorizer::fit(&corpus());
        let x = v.transform::<&str>(&[]);
        assert!(x.iter().all(|v| *v == 0.0));
    }

    #[test]
    fn unknown_tokens_are_ignored() {
        let v = TfIdfVectorizer::fit(&corpus());
        let a = v.transform(&["SELECT", "FROM"]);
        let b = v.transform(&["SELECT", "FROM", "sbtest1", "xyz"]);
        assert_eq!(a, b);
    }

    #[test]
    fn dimension_is_vocab_size() {
        let v = TfIdfVectorizer::fit(&corpus());
        assert_eq!(v.transform(&["SELECT"]).len(), TfIdfVectorizer::VOCAB);
    }
}
