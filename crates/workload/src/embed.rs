//! The workload-embedding pipeline: reserved words → TF-IDF → random forest
//! class probabilities → averaged distribution = meta-feature (§6.2).

use crate::forest::RandomForest;
use crate::sql::{generate_queries, SqlQuery};
use crate::tfidf::TfIdfVectorizer;
use crate::tokenizer::extract_reserved_words;
use dbsim::WorkloadSpec;

/// A workload meta-feature: the averaged class-probability distribution of
/// its queries' resource-cost classes.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadEmbedding {
    /// Probability mass per resource-cost class (sums to 1).
    pub probs: Vec<f64>,
}

impl WorkloadEmbedding {
    /// Euclidean distance between two embeddings, the quantity Table 5
    /// reports as "Distance to Wt".
    pub fn distance(&self, other: &WorkloadEmbedding) -> f64 {
        debug_assert_eq!(self.probs.len(), other.probs.len());
        self.probs
            .iter()
            .zip(&other.probs)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt()
    }

    /// Dimensionality (number of cost classes).
    pub fn dim(&self) -> usize {
        self.probs.len()
    }
}

/// The trained characterization pipeline: TF-IDF vectorizer + random forest.
///
/// Training labels are log-scaled, discretized query costs — the paper
/// applies a logarithmic transformation because raw costs are highly skewed
/// and then discretizes for classification.
#[derive(Debug, Clone)]
pub struct WorkloadCharacterizer {
    vectorizer: TfIdfVectorizer,
    forest: RandomForest,
    /// Log-cost bin edges (length = n_classes - 1).
    bin_edges: Vec<f64>,
}

/// Number of resource-cost classes.
pub const N_COST_CLASSES: usize = 5;

/// Queries sampled per workload when training and embedding.
const QUERIES_PER_WORKLOAD: usize = 400;

impl WorkloadCharacterizer {
    /// Log-cost bin edges used to discretize query costs (length =
    /// [`N_COST_CLASSES`] − 1).
    pub fn bin_edges(&self) -> &[f64] {
        &self.bin_edges
    }

    /// Trains the pipeline on a corpus of labelled queries.
    pub fn train_on(queries: &[SqlQuery], n_trees: usize, seed: u64) -> Self {
        assert!(!queries.is_empty());
        let token_lists: Vec<Vec<&'static str>> =
            queries.iter().map(|q| extract_reserved_words(&q.text)).collect();
        let vectorizer = TfIdfVectorizer::fit(&token_lists);
        let x: Vec<Vec<f64>> =
            token_lists.iter().map(|toks| vectorizer.transform(toks)).collect();

        // Log-transform the skewed cost labels, then bin into equal-width
        // classes over the observed range.
        let logs: Vec<f64> = queries.iter().map(|q| (1.0 + q.cost).ln()).collect();
        let lo = logs.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = logs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let width = ((hi - lo) / N_COST_CLASSES as f64).max(1e-9);
        let bin_edges: Vec<f64> =
            (1..N_COST_CLASSES).map(|i| lo + width * i as f64).collect();
        let y: Vec<usize> = logs.iter().map(|&l| Self::bin(&bin_edges, l)).collect();

        let forest = RandomForest::fit(&x, &y, N_COST_CLASSES, n_trees, seed);
        WorkloadCharacterizer { vectorizer, forest, bin_edges }
    }

    /// Trains on queries generated from the standard workload families —
    /// the cloud provider's offline training corpus.
    pub fn train_default(seed: u64) -> Self {
        let mut corpus = Vec::new();
        for (i, spec) in WorkloadSpec::evaluation_suite().iter().enumerate() {
            corpus.extend(generate_queries(spec, QUERIES_PER_WORKLOAD, seed + i as u64));
        }
        Self::train_on(&corpus, 20, seed)
    }

    fn bin(edges: &[f64], v: f64) -> usize {
        edges.iter().take_while(|e| v > **e).count()
    }

    /// Classifies one query into a cost-class distribution.
    pub fn classify(&self, sql: &str) -> Vec<f64> {
        let toks = extract_reserved_words(sql);
        let x = self.vectorizer.transform(&toks);
        self.forest.predict_proba(&x)
    }

    /// Embeds a query stream: the averaged class distribution.
    pub fn embed_queries<'a>(&self, sqls: impl IntoIterator<Item = &'a str>) -> WorkloadEmbedding {
        let mut acc = vec![0.0; N_COST_CLASSES];
        let mut n = 0usize;
        for sql in sqls {
            let p = self.classify(sql);
            for (a, v) in acc.iter_mut().zip(&p) {
                *a += v;
            }
            n += 1;
        }
        if n > 0 {
            for a in &mut acc {
                *a /= n as f64;
            }
        }
        WorkloadEmbedding { probs: acc }
    }

    /// Embeds a workload spec by generating its query stream first.
    pub fn embed_workload(&self, spec: &WorkloadSpec, seed: u64) -> WorkloadEmbedding {
        let queries = generate_queries(spec, QUERIES_PER_WORKLOAD, seed);
        self.embed_queries(queries.iter().map(|q| q.text.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn characterizer() -> WorkloadCharacterizer {
        WorkloadCharacterizer::train_default(42)
    }

    #[test]
    fn embedding_is_a_probability_distribution() {
        let c = characterizer();
        let e = c.embed_workload(&WorkloadSpec::sysbench(), 1);
        assert_eq!(e.dim(), N_COST_CLASSES);
        assert!((e.probs.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(e.probs.iter().all(|p| *p >= 0.0));
    }

    #[test]
    fn same_workload_embeds_near_itself_across_windows() {
        let c = characterizer();
        let a = c.embed_workload(&WorkloadSpec::twitter(), 1);
        let b = c.embed_workload(&WorkloadSpec::twitter(), 2);
        assert!(a.distance(&b) < 0.05, "self-distance {}", a.distance(&b));
    }

    #[test]
    fn twitter_variations_order_by_insert_ratio() {
        // Table 5: W1 (closest R/W mix to the target) must be nearer than W5.
        let c = characterizer();
        let target = c.embed_workload(&WorkloadSpec::twitter(), 7);
        let vars = WorkloadSpec::twitter_variations();
        let d1 = target.distance(&c.embed_workload(&vars[0], 7));
        let d5 = target.distance(&c.embed_workload(&vars[4], 7));
        assert!(d1 < d5, "W1 distance {d1} should be < W5 distance {d5}");
    }

    #[test]
    fn different_families_are_farther_than_variations() {
        let c = characterizer();
        let twitter = c.embed_workload(&WorkloadSpec::twitter(), 3);
        let w1 = c.embed_workload(&WorkloadSpec::twitter_variations()[0], 3);
        let sales = c.embed_workload(&WorkloadSpec::sales(), 3);
        assert!(twitter.distance(&w1) < twitter.distance(&sales));
    }

    #[test]
    fn classify_outputs_distribution_per_query() {
        let c = characterizer();
        let p = c.classify("SELECT region, SUM(amount) FROM sales GROUP BY region");
        assert_eq!(p.len(), N_COST_CLASSES);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn heavy_aggregations_classify_costlier_than_point_reads() {
        let c = characterizer();
        let point = c.classify("SELECT * FROM tweets WHERE id = 5");
        let agg = c.classify(
            "SELECT region, SUM(amount) AS total FROM sales WHERE day BETWEEN 1 AND 30 GROUP BY region ORDER BY total DESC",
        );
        let ev = |p: &[f64]| p.iter().enumerate().map(|(i, v)| i as f64 * v).sum::<f64>();
        assert!(ev(&agg) > ev(&point), "agg {:?} point {:?}", agg, point);
    }
}
