//! Reserved-word tokenization of SQL text.
//!
//! Variable names and literals are unbounded across schemas, which makes
//! generalization hard (§6.2); the paper therefore keeps only SQL reserved
//! words, giving a small, schema-independent vocabulary.

/// The reserved-word vocabulary, ordered; indices are stable across the
/// workspace (TF-IDF vectors use this order).
pub const RESERVED_WORDS: [&str; 40] = [
    "SELECT", "INSERT", "UPDATE", "DELETE", "REPLACE", "FROM", "WHERE", "AND", "OR", "NOT",
    "JOIN", "INNER", "LEFT", "OUTER", "ON", "GROUP", "ORDER", "BY", "HAVING", "LIMIT",
    "OFFSET", "DISTINCT", "COUNT", "SUM", "AVG", "MIN", "MAX", "BETWEEN", "IN", "LIKE",
    "VALUES", "SET", "INTO", "AS", "ASC", "DESC", "UNION", "EXISTS", "NULL", "FOR",
];

/// Index of a reserved word in [`RESERVED_WORDS`], if present.
pub fn reserved_word_index(word: &str) -> Option<usize> {
    RESERVED_WORDS.iter().position(|w| w.eq_ignore_ascii_case(word))
}

/// Extracts the reserved words of a SQL query, in order of appearance
/// (duplicates preserved — term frequency matters).
///
/// Identifiers, literals, and punctuation are filtered out, exactly the
/// "filter out the specific variables" step of the paper's pipeline.
pub fn extract_reserved_words(sql: &str) -> Vec<&'static str> {
    let mut out = Vec::new();
    let mut word = String::new();
    let mut in_string = false;
    for ch in sql.chars() {
        if in_string {
            if ch == '\'' {
                in_string = false;
            }
            continue;
        }
        if ch == '\'' {
            in_string = true;
            flush_word(&mut word, &mut out);
            continue;
        }
        if ch.is_ascii_alphabetic() || ch == '_' {
            word.push(ch);
        } else {
            flush_word(&mut word, &mut out);
        }
    }
    flush_word(&mut word, &mut out);
    out
}

fn flush_word(word: &mut String, out: &mut Vec<&'static str>) {
    if !word.is_empty() {
        if let Some(idx) = reserved_word_index(word) {
            out.push(RESERVED_WORDS[idx]);
        }
        word.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extracts_keywords_and_drops_identifiers() {
        let sql = "SELECT c FROM sbtest1 WHERE id BETWEEN 42 AND 141";
        assert_eq!(
            extract_reserved_words(sql),
            vec!["SELECT", "FROM", "WHERE", "BETWEEN", "AND"]
        );
    }

    #[test]
    fn case_insensitive() {
        let sql = "select * from t where a like '%x%'";
        assert_eq!(extract_reserved_words(sql), vec!["SELECT", "FROM", "WHERE", "LIKE"]);
    }

    #[test]
    fn string_literals_are_ignored_even_with_keywords_inside() {
        let sql = "INSERT INTO t VALUES ('SELECT FROM WHERE')";
        assert_eq!(extract_reserved_words(sql), vec!["INSERT", "INTO", "VALUES"]);
    }

    #[test]
    fn duplicates_are_preserved_for_term_frequency() {
        let sql = "SELECT a FROM t WHERE x = 1 AND y = 2 AND z = 3";
        let toks = extract_reserved_words(sql);
        assert_eq!(toks.iter().filter(|t| **t == "AND").count(), 2);
    }

    #[test]
    fn identifiers_resembling_keywords_with_underscores_do_not_match() {
        let sql = "SELECT order_id FROM orders_table";
        // order_id / orders_table are single tokens (underscore keeps them
        // whole) and are not reserved words.
        assert_eq!(extract_reserved_words(sql), vec!["SELECT", "FROM"]);
    }

    #[test]
    fn vocabulary_has_no_duplicates() {
        let set: std::collections::HashSet<_> = RESERVED_WORDS.iter().collect();
        assert_eq!(set.len(), RESERVED_WORDS.len());
    }

    #[test]
    fn empty_and_keywordless_inputs() {
        assert!(extract_reserved_words("").is_empty());
        assert!(extract_reserved_words("1 + 2, foo bar").is_empty());
    }
}
