//! Per-workload SQL query templates and a seeded stream generator.
//!
//! In production, ResTune's client captures a time window of the user's
//! workload and the replayer extracts query templates, sampling scalar values
//! and variable names before replaying (§4). Here the generator plays the
//! role of that captured window: each workload family gets realistic
//! templates, and the sampled mix follows the spec's read/write ratio — so
//! the Twitter variations W1–W5 (increasing INSERT share, Table 5) produce
//! measurably different keyword distributions.

use dbsim::{WorkloadKind, WorkloadSpec};
use xrand::rngs::StdRng;
use xrand::{RngExt, SeedableRng};

/// A generated SQL query with a ground-truth resource-cost hint.
#[derive(Debug, Clone, PartialEq)]
pub struct SqlQuery {
    /// The SQL text (with sampled literals).
    pub text: String,
    /// Ground-truth relative resource cost of this query shape (arbitrary
    /// units; log-scaled and discretized into classes for training).
    pub cost: f64,
}

struct Template {
    /// Weight among read or write templates.
    weight: f64,
    /// Whether this is a write.
    is_write: bool,
    /// Relative resource cost of the query shape.
    cost: f64,
    /// Renders the template with sampled literals.
    render: fn(&mut StdRng) -> String,
}

fn id(rng: &mut StdRng) -> u64 {
    rng.random_range(1..1_000_000)
}

fn sysbench_templates() -> Vec<Template> {
    vec![
        Template {
            weight: 10.0,
            is_write: false,
            cost: 1.0,
            render: |r| format!("SELECT c FROM sbtest{} WHERE id = {}", r.random_range(1..150u32), id(r)),
        },
        Template {
            weight: 1.0,
            is_write: false,
            cost: 3.0,
            render: |r| {
                let lo = id(r);
                format!("SELECT c FROM sbtest{} WHERE id BETWEEN {} AND {}", r.random_range(1..150u32), lo, lo + 99)
            },
        },
        Template {
            weight: 1.0,
            is_write: false,
            cost: 4.0,
            render: |r| {
                let lo = id(r);
                format!("SELECT SUM(k) FROM sbtest{} WHERE id BETWEEN {} AND {}", r.random_range(1..150u32), lo, lo + 99)
            },
        },
        Template {
            weight: 1.0,
            is_write: false,
            cost: 5.0,
            render: |r| {
                let lo = id(r);
                format!(
                    "SELECT c FROM sbtest{} WHERE id BETWEEN {} AND {} ORDER BY c",
                    r.random_range(1..150u32), lo, lo + 99
                )
            },
        },
        Template {
            weight: 1.0,
            is_write: false,
            cost: 6.0,
            render: |r| {
                let lo = id(r);
                format!(
                    "SELECT DISTINCT c FROM sbtest{} WHERE id BETWEEN {} AND {} ORDER BY c",
                    r.random_range(1..150u32), lo, lo + 99
                )
            },
        },
        Template {
            weight: 2.0,
            is_write: true,
            cost: 4.0,
            render: |r| format!("UPDATE sbtest{} SET k = k + 1 WHERE id = {}", r.random_range(1..150u32), id(r)),
        },
        Template {
            weight: 1.0,
            is_write: true,
            cost: 5.0,
            render: |r| {
                format!("UPDATE sbtest{} SET c = '{}' WHERE id = {}", r.random_range(1..150u32), id(r), id(r))
            },
        },
        Template {
            weight: 1.0,
            is_write: true,
            cost: 6.0,
            render: |r| format!("DELETE FROM sbtest{} WHERE id = {}", r.random_range(1..150u32), id(r)),
        },
        Template {
            weight: 1.0,
            is_write: true,
            cost: 6.0,
            render: |r| {
                format!("INSERT INTO sbtest{} (id, k, c, pad) VALUES ({}, {}, '{}', '{}')",
                    r.random_range(1..150u32), id(r), id(r), id(r), id(r))
            },
        },
    ]
}

fn tpcc_templates() -> Vec<Template> {
    vec![
        Template {
            weight: 4.0,
            is_write: false,
            cost: 2.0,
            render: |r| format!(
                "SELECT w_tax, w_name FROM warehouse WHERE w_id = {}",
                r.random_range(1..200u32)
            ),
        },
        Template {
            weight: 4.0,
            is_write: false,
            cost: 3.0,
            render: |r| format!(
                "SELECT s_quantity, s_data FROM stock WHERE s_i_id = {} AND s_w_id = {} FOR UPDATE",
                id(r), r.random_range(1..200u32)
            ),
        },
        Template {
            weight: 2.0,
            is_write: false,
            cost: 6.0,
            render: |r| format!(
                "SELECT COUNT(DISTINCT s_i_id) FROM order_line, stock WHERE ol_w_id = {} AND s_quantity < {}",
                r.random_range(1..200u32), r.random_range(10..20u32)
            ),
        },
        Template {
            weight: 2.0,
            is_write: false,
            cost: 5.0,
            render: |r| format!(
                "SELECT o_id, o_carrier_id FROM orders WHERE o_c_id = {} ORDER BY o_id DESC LIMIT 1",
                id(r)
            ),
        },
        Template {
            weight: 5.0,
            is_write: true,
            cost: 5.0,
            render: |r| format!(
                "INSERT INTO order_line (ol_o_id, ol_w_id, ol_i_id, ol_quantity) VALUES ({}, {}, {}, {})",
                id(r), r.random_range(1..200u32), id(r), r.random_range(1..10u32)
            ),
        },
        Template {
            weight: 4.0,
            is_write: true,
            cost: 4.0,
            render: |r| format!(
                "UPDATE stock SET s_quantity = {} WHERE s_i_id = {} AND s_w_id = {}",
                r.random_range(10..100u32), id(r), r.random_range(1..200u32)
            ),
        },
        Template {
            weight: 3.0,
            is_write: true,
            cost: 4.0,
            render: |r| format!(
                "UPDATE customer SET c_balance = c_balance - {} WHERE c_id = {}",
                r.random_range(1..500u32), id(r)
            ),
        },
        Template {
            weight: 1.0,
            is_write: true,
            cost: 7.0,
            render: |r| format!(
                "DELETE FROM new_order WHERE no_o_id = {} AND no_w_id = {}",
                id(r), r.random_range(1..200u32)
            ),
        },
    ]
}

fn twitter_templates() -> Vec<Template> {
    vec![
        Template {
            weight: 40.0,
            is_write: false,
            cost: 1.0,
            render: |r| format!("SELECT * FROM tweets WHERE id = {}", id(r)),
        },
        Template {
            weight: 30.0,
            is_write: false,
            cost: 3.0,
            render: |r| format!(
                "SELECT * FROM tweets WHERE uid IN ({}, {}, {}) ORDER BY id DESC LIMIT 20",
                id(r), id(r), id(r)
            ),
        },
        Template {
            weight: 20.0,
            is_write: false,
            cost: 2.0,
            render: |r| format!("SELECT f2 FROM follows WHERE f1 = {} LIMIT 20", id(r)),
        },
        Template {
            weight: 10.0,
            is_write: false,
            cost: 2.0,
            render: |r| format!("SELECT uid FROM followers WHERE f1 = {} LIMIT 20", id(r)),
        },
        Template {
            weight: 1.0,
            is_write: true,
            cost: 4.0,
            render: |r| format!("INSERT INTO tweets (uid, text, createdate) VALUES ({}, '{}', NULL)", id(r), id(r)),
        },
    ]
}

fn hotel_templates() -> Vec<Template> {
    vec![
        Template {
            weight: 8.0,
            is_write: false,
            cost: 4.0,
            render: |r| format!(
                "SELECT room_id, rate FROM rooms WHERE hotel_id = {} AND free_from <= {} AND NOT booked ORDER BY rate LIMIT 10",
                id(r), id(r)
            ),
        },
        Template {
            weight: 6.0,
            is_write: false,
            cost: 5.0,
            render: |r| format!(
                "SELECT h.name, AVG(rv.score) FROM hotels AS h LEFT JOIN reviews AS rv ON h.id = rv.hotel_id WHERE h.city = '{}' GROUP BY h.name LIMIT 25",
                id(r)
            ),
        },
        Template {
            weight: 4.0,
            is_write: false,
            cost: 2.0,
            render: |r| format!("SELECT * FROM bookings WHERE customer_id = {} ORDER BY checkin DESC LIMIT 5", id(r)),
        },
        Template {
            weight: 1.0,
            is_write: true,
            cost: 5.0,
            render: |r| format!(
                "INSERT INTO bookings (room_id, customer_id, checkin, nights) VALUES ({}, {}, {}, {})",
                id(r), id(r), id(r), r.random_range(1..14u32)
            ),
        },
        Template {
            weight: 1.0,
            is_write: true,
            cost: 3.0,
            render: |r| format!("UPDATE rooms SET booked = 1 WHERE room_id = {}", id(r)),
        },
    ]
}

fn sales_templates() -> Vec<Template> {
    vec![
        Template {
            weight: 10.0,
            is_write: false,
            cost: 7.0,
            render: |r| format!(
                "SELECT region, SUM(amount) AS total FROM sales WHERE day BETWEEN {} AND {} GROUP BY region ORDER BY total DESC",
                id(r), id(r)
            ),
        },
        Template {
            weight: 8.0,
            is_write: false,
            cost: 6.0,
            render: |r| format!(
                "SELECT product_id, COUNT(*), AVG(amount) FROM sales WHERE store_id = {} GROUP BY product_id HAVING COUNT(*) > {} LIMIT 100",
                id(r), r.random_range(1..50u32)
            ),
        },
        Template {
            weight: 6.0,
            is_write: false,
            cost: 3.0,
            render: |r| format!("SELECT * FROM orders WHERE order_id = {}", id(r)),
        },
        Template {
            weight: 4.0,
            is_write: false,
            cost: 8.0,
            render: |r| format!(
                "SELECT s.store_id, MAX(s.amount) FROM sales AS s INNER JOIN stores AS st ON s.store_id = st.id WHERE st.region = '{}' GROUP BY s.store_id",
                id(r)
            ),
        },
        Template {
            weight: 1.0,
            is_write: true,
            cost: 4.0,
            render: |r| format!(
                "INSERT INTO sales (store_id, product_id, amount, day) VALUES ({}, {}, {}, {})",
                id(r), id(r), r.random_range(1..10_000u32), id(r)
            ),
        },
    ]
}

fn olap_templates() -> Vec<Template> {
    vec![
        Template {
            weight: 10.0,
            is_write: false,
            cost: 9.0,
            render: |r| format!(
                "SELECT d.year, c.segment, SUM(f.revenue) FROM fact_sales AS f INNER JOIN dim_date AS d ON f.date_id = d.id INNER JOIN dim_customer AS c ON f.customer_id = c.id WHERE d.year BETWEEN {} AND {} GROUP BY d.year, c.segment ORDER BY d.year",
                r.random_range(2000..2010u32), r.random_range(2010..2025u32)
            ),
        },
        Template {
            weight: 8.0,
            is_write: false,
            cost: 10.0,
            render: |r| format!(
                "SELECT p.category, AVG(f.margin), COUNT(DISTINCT f.customer_id) FROM fact_sales AS f INNER JOIN dim_product AS p ON f.product_id = p.id LEFT JOIN dim_store AS s ON f.store_id = s.id WHERE s.region = '{}' GROUP BY p.category ORDER BY AVG(f.margin) DESC",
                id(r)
            ),
        },
        Template {
            weight: 6.0,
            is_write: false,
            cost: 8.0,
            render: |r| format!(
                "SELECT f.store_id, SUM(f.quantity) FROM fact_inventory AS f WHERE f.snapshot_day BETWEEN {} AND {} GROUP BY f.store_id ORDER BY SUM(f.quantity) DESC LIMIT 50",
                id(r), id(r)
            ),
        },
        Template {
            weight: 4.0,
            is_write: false,
            cost: 10.0,
            render: |r| format!(
                "SELECT c.country, d.quarter, MIN(f.revenue), MAX(f.revenue) FROM fact_sales AS f INNER JOIN dim_customer AS c ON f.customer_id = c.id INNER JOIN dim_date AS d ON f.date_id = d.id WHERE c.cohort = {} GROUP BY c.country, d.quarter",
                id(r)
            ),
        },
        Template {
            weight: 1.0,
            is_write: true,
            cost: 6.0,
            render: |r| format!(
                "INSERT INTO fact_sales (date_id, customer_id, product_id, revenue) VALUES ({}, {}, {}, {})",
                id(r), id(r), id(r), r.random_range(1..100_000u32)
            ),
        },
    ]
}

fn templates_for(kind: WorkloadKind) -> Vec<Template> {
    match kind {
        WorkloadKind::Sysbench => sysbench_templates(),
        WorkloadKind::Tpcc => tpcc_templates(),
        WorkloadKind::Twitter => twitter_templates(),
        WorkloadKind::Hotel => hotel_templates(),
        WorkloadKind::Sales => sales_templates(),
        WorkloadKind::Olap => olap_templates(),
    }
}

/// Generates a seeded stream of `n` queries for `spec`, with the write share
/// matching the spec's R/W ratio.
pub fn generate_queries(spec: &WorkloadSpec, n: usize, seed: u64) -> Vec<SqlQuery> {
    let templates = templates_for(spec.kind);
    let write_frac = spec.write_fraction();
    let reads: Vec<&Template> = templates.iter().filter(|t| !t.is_write).collect();
    let writes: Vec<&Template> = templates.iter().filter(|t| t.is_write).collect();
    let mut rng = StdRng::seed_from_u64(seed ^ 0xC0FFEE);
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let pool = if rng.random::<f64>() < write_frac && !writes.is_empty() {
            &writes
        } else {
            &reads
        };
        let total: f64 = pool.iter().map(|t| t.weight).sum();
        let mut pick = rng.random::<f64>() * total;
        let mut chosen = pool[0];
        for t in pool {
            pick -= t.weight;
            if pick <= 0.0 {
                chosen = t;
                break;
            }
        }
        let text = (chosen.render)(&mut rng);
        // Cost varies a little with sampled parameters.
        let cost = chosen.cost * (0.85 + 0.3 * rng.random::<f64>());
        out.push(SqlQuery { text, cost });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenizer::extract_reserved_words;

    #[test]
    fn generates_requested_count() {
        let q = generate_queries(&WorkloadSpec::sysbench(), 100, 1);
        assert_eq!(q.len(), 100);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = generate_queries(&WorkloadSpec::tpcc(), 50, 9);
        let b = generate_queries(&WorkloadSpec::tpcc(), 50, 9);
        assert_eq!(a, b);
        let c = generate_queries(&WorkloadSpec::tpcc(), 50, 10);
        assert_ne!(a, c);
    }

    #[test]
    fn write_share_tracks_spec_ratio() {
        let is_write = |q: &SqlQuery| {
            let t = q.text.to_uppercase();
            t.starts_with("INSERT") || t.starts_with("UPDATE") || t.starts_with("DELETE")
        };
        let heavy = WorkloadSpec::sysbench().with_rw_ratio(1.0, 1.0);
        let light = WorkloadSpec::sysbench().with_rw_ratio(50.0, 1.0);
        let wh = generate_queries(&heavy, 2000, 3).iter().filter(|q| is_write(q)).count();
        let wl = generate_queries(&light, 2000, 3).iter().filter(|q| is_write(q)).count();
        assert!(wh > 800 && wh < 1200, "heavy writes {wh}");
        assert!(wl < 120, "light writes {wl}");
    }

    #[test]
    fn every_template_tokenizes_to_keywords() {
        for spec in WorkloadSpec::evaluation_suite() {
            for q in generate_queries(&spec, 200, 0) {
                let toks = extract_reserved_words(&q.text);
                assert!(!toks.is_empty(), "no keywords in {:?}", q.text);
                assert!(q.cost > 0.0);
            }
        }
    }

    #[test]
    fn families_have_distinct_keyword_profiles() {
        let profile = |spec: &WorkloadSpec| {
            let mut counts = std::collections::HashMap::new();
            for q in generate_queries(spec, 500, 5) {
                for t in extract_reserved_words(&q.text) {
                    *counts.entry(t).or_insert(0usize) += 1;
                }
            }
            counts
        };
        let sales = profile(&WorkloadSpec::sales());
        let twitter = profile(&WorkloadSpec::twitter());
        // Sales is aggregation-heavy; Twitter is point-read heavy.
        assert!(sales.get("GROUP").copied().unwrap_or(0) > 100);
        assert!(twitter.get("GROUP").copied().unwrap_or(0) < 10);
    }

    #[test]
    fn olap_profile_is_join_heavy_and_distinct_from_sales() {
        let profile = |spec: &WorkloadSpec| {
            let mut counts = std::collections::HashMap::new();
            for q in generate_queries(spec, 500, 5) {
                for t in extract_reserved_words(&q.text) {
                    *counts.entry(t).or_insert(0usize) += 1;
                }
            }
            counts
        };
        let olap = profile(&WorkloadSpec::olap());
        let sales = profile(&WorkloadSpec::sales());
        // Every OLAP query tokenizes and carries a heavy cost hint.
        for q in generate_queries(&WorkloadSpec::olap(), 200, 0) {
            assert!(!extract_reserved_words(&q.text).is_empty());
            assert!(q.cost > 0.0);
        }
        // Star-schema reporting: far more JOINs per query than Sales' flat
        // GROUP BY/HAVING aggregations, so the TF-IDF embedding separates
        // the two even though both aggregate.
        let joins_per_q = |p: &std::collections::HashMap<&str, usize>| {
            p.get("JOIN").copied().unwrap_or(0) as f64 / 500.0
        };
        assert!(joins_per_q(&olap) > 1.0, "OLAP should average >1 JOIN per query");
        assert!(joins_per_q(&olap) > 3.0 * joins_per_q(&sales));
        assert!(sales.get("HAVING").copied().unwrap_or(0) > 0);
        assert!(olap.get("HAVING").copied().unwrap_or(0) == 0);
    }
}
