//! From-scratch CART decision trees and a bagging random forest.
//!
//! The paper trains a random-forest classifier from TF-IDF query vectors to
//! (log-scaled, discretized) resource-cost classes; the averaged predicted
//! class distribution over a workload's queries is its meta-feature (§6.2).

use xrand::rngs::StdRng;
use xrand::{RngExt, SeedableRng};

/// A node of a binary CART tree, stored in a flat arena.
#[derive(Debug, Clone)]
enum Node {
    /// Internal split: `x[feature] <= threshold` goes left.
    Split { feature: usize, threshold: f64, left: usize, right: usize },
    /// Leaf with a class-probability distribution.
    Leaf { probs: Vec<f64> },
}

/// A single CART classification tree (Gini impurity).
#[derive(Debug, Clone)]
pub struct DecisionTree {
    nodes: Vec<Node>,
    n_classes: usize,
}

/// Tree-growing parameters.
#[derive(Debug, Clone, Copy)]
pub struct TreeConfig {
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Minimum samples required to split a node.
    pub min_samples_split: usize,
    /// Number of candidate features per split (`None` = all).
    pub max_features: Option<usize>,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig { max_depth: 8, min_samples_split: 4, max_features: None }
    }
}

impl DecisionTree {
    /// Fits a tree on `(x, y)` with classes `0..n_classes`.
    pub fn fit(
        x: &[Vec<f64>],
        y: &[usize],
        n_classes: usize,
        config: &TreeConfig,
        rng: &mut StdRng,
    ) -> Self {
        assert_eq!(x.len(), y.len());
        assert!(!x.is_empty(), "cannot fit a tree on an empty dataset");
        let mut tree = DecisionTree { nodes: Vec::new(), n_classes };
        let indices: Vec<usize> = (0..x.len()).collect();
        tree.grow(x, y, &indices, 0, config, rng);
        tree
    }

    fn leaf_probs(&self, y: &[usize], indices: &[usize]) -> Vec<f64> {
        let mut counts = vec![0.0; self.n_classes];
        for &i in indices {
            counts[y[i]] += 1.0;
        }
        let total: f64 = counts.iter().sum();
        if total > 0.0 {
            for c in &mut counts {
                *c /= total;
            }
        }
        counts
    }

    fn gini(counts: &[f64], total: f64) -> f64 {
        if total == 0.0 {
            return 0.0;
        }
        1.0 - counts.iter().map(|c| (c / total) * (c / total)).sum::<f64>()
    }

    /// Grows a subtree over `indices`; returns the node id.
    fn grow(
        &mut self,
        x: &[Vec<f64>],
        y: &[usize],
        indices: &[usize],
        depth: usize,
        config: &TreeConfig,
        rng: &mut StdRng,
    ) -> usize {
        let probs = self.leaf_probs(y, indices);
        let pure = probs.iter().any(|p| *p > 0.999);
        if depth >= config.max_depth || indices.len() < config.min_samples_split || pure {
            self.nodes.push(Node::Leaf { probs });
            return self.nodes.len() - 1;
        }

        let n_features = x[0].len();
        let k = config.max_features.unwrap_or(n_features).min(n_features);
        // Sample k distinct candidate features.
        let mut feats: Vec<usize> = (0..n_features).collect();
        for i in 0..k {
            let j = rng.random_range(i..n_features);
            feats.swap(i, j);
        }
        let feats = &feats[..k];

        let parent_counts = {
            let mut c = vec![0.0; self.n_classes];
            for &i in indices {
                c[y[i]] += 1.0;
            }
            c
        };
        let total = indices.len() as f64;
        let parent_gini = Self::gini(&parent_counts, total);

        let mut best: Option<(f64, usize, f64)> = None; // (gain, feature, threshold)
        let mut sorted = indices.to_vec();
        for &f in feats {
            sorted.sort_by(|&a, &b| x[a][f].partial_cmp(&x[b][f]).unwrap());
            let mut left_counts = vec![0.0; self.n_classes];
            let mut right_counts = parent_counts.clone();
            for w in 0..sorted.len() - 1 {
                let i = sorted[w];
                left_counts[y[i]] += 1.0;
                right_counts[y[i]] -= 1.0;
                let (xa, xb) = (x[sorted[w]][f], x[sorted[w + 1]][f]);
                if xa == xb {
                    continue;
                }
                let nl = (w + 1) as f64;
                let nr = total - nl;
                let gain = parent_gini
                    - (nl / total) * Self::gini(&left_counts, nl)
                    - (nr / total) * Self::gini(&right_counts, nr);
                if best.map(|(g, _, _)| gain > g).unwrap_or(gain > 1e-9) {
                    best = Some((gain, f, 0.5 * (xa + xb)));
                }
            }
        }

        let Some((_, feature, threshold)) = best else {
            self.nodes.push(Node::Leaf { probs });
            return self.nodes.len() - 1;
        };

        let (left_idx, right_idx): (Vec<usize>, Vec<usize>) =
            indices.iter().partition(|&&i| x[i][feature] <= threshold);
        if left_idx.is_empty() || right_idx.is_empty() {
            self.nodes.push(Node::Leaf { probs });
            return self.nodes.len() - 1;
        }

        // Reserve the split node, then grow children.
        let my_id = self.nodes.len();
        self.nodes.push(Node::Leaf { probs: Vec::new() }); // placeholder
        let left = self.grow(x, y, &left_idx, depth + 1, config, rng);
        let right = self.grow(x, y, &right_idx, depth + 1, config, rng);
        self.nodes[my_id] = Node::Split { feature, threshold, left, right };
        my_id
    }

    /// Predicted class-probability distribution for one sample.
    pub fn predict_proba(&self, x: &[f64]) -> Vec<f64> {
        // Root is node 0 by construction (grow is called once from fit).
        let mut node = 0usize;
        loop {
            match &self.nodes[node] {
                Node::Leaf { probs } => return probs.clone(),
                Node::Split { feature, threshold, left, right } => {
                    node = if x[*feature] <= *threshold { *left } else { *right };
                }
            }
        }
    }

    /// Predicted class (argmax of probabilities).
    pub fn predict(&self, x: &[f64]) -> usize {
        let p = self.predict_proba(x);
        p.iter().enumerate().max_by(|a, b| a.1.partial_cmp(b.1).unwrap()).map(|(i, _)| i).unwrap()
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }
}

/// A bagging random forest of CART trees with feature subsampling.
#[derive(Debug, Clone)]
pub struct RandomForest {
    trees: Vec<DecisionTree>,
    n_classes: usize,
}

impl RandomForest {
    /// Fits `n_trees` trees on bootstrap resamples, each considering
    /// `sqrt(n_features)` candidate features per split.
    pub fn fit(x: &[Vec<f64>], y: &[usize], n_classes: usize, n_trees: usize, seed: u64) -> Self {
        assert_eq!(x.len(), y.len());
        assert!(!x.is_empty());
        let n = x.len();
        let n_features = x[0].len();
        let config = TreeConfig {
            max_depth: 10,
            min_samples_split: 4,
            max_features: Some(((n_features as f64).sqrt().ceil() as usize).max(2)),
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let mut trees = Vec::with_capacity(n_trees);
        for _ in 0..n_trees {
            // Bootstrap resample.
            let idx: Vec<usize> = (0..n).map(|_| rng.random_range(0..n)).collect();
            let bx: Vec<Vec<f64>> = idx.iter().map(|&i| x[i].clone()).collect();
            let by: Vec<usize> = idx.iter().map(|&i| y[i]).collect();
            trees.push(DecisionTree::fit(&bx, &by, n_classes, &config, &mut rng));
        }
        RandomForest { trees, n_classes }
    }

    /// Average class-probability distribution across trees.
    pub fn predict_proba(&self, x: &[f64]) -> Vec<f64> {
        let mut acc = vec![0.0; self.n_classes];
        for tree in &self.trees {
            let p = tree.predict_proba(x);
            for (a, v) in acc.iter_mut().zip(&p) {
                *a += v;
            }
        }
        let nt = self.trees.len() as f64;
        for a in &mut acc {
            *a /= nt;
        }
        acc
    }

    /// Predicted class (argmax).
    pub fn predict(&self, x: &[f64]) -> usize {
        let p = self.predict_proba(x);
        p.iter().enumerate().max_by(|a, b| a.1.partial_cmp(b.1).unwrap()).map(|(i, _)| i).unwrap()
    }

    /// Number of trees.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two well-separated Gaussian-ish blobs in 2D.
    fn blobs(n: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..n {
            let class = i % 2;
            let center = if class == 0 { 0.2 } else { 0.8 };
            x.push(vec![
                center + 0.1 * (rng.random::<f64>() - 0.5),
                center + 0.1 * (rng.random::<f64>() - 0.5),
            ]);
            y.push(class);
        }
        (x, y)
    }

    #[test]
    fn tree_separates_blobs() {
        let (x, y) = blobs(200, 1);
        let mut rng = StdRng::seed_from_u64(2);
        let tree = DecisionTree::fit(&x, &y, 2, &TreeConfig::default(), &mut rng);
        let correct = x.iter().zip(&y).filter(|(xi, yi)| tree.predict(xi) == **yi).count();
        assert!(correct as f64 / x.len() as f64 > 0.97, "accuracy {correct}/{}", x.len());
    }

    #[test]
    fn forest_separates_blobs_and_outputs_distributions() {
        let (x, y) = blobs(200, 3);
        let forest = RandomForest::fit(&x, &y, 2, 15, 4);
        assert_eq!(forest.n_trees(), 15);
        let p = forest.predict_proba(&[0.2, 0.2]);
        assert_eq!(p.len(), 2);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(p[0] > 0.8, "p(class 0 | blob 0) = {}", p[0]);
    }

    #[test]
    fn pure_leaf_predicts_its_class() {
        let x = vec![vec![0.0], vec![0.0], vec![1.0], vec![1.0]];
        let y = vec![0, 0, 1, 1];
        let mut rng = StdRng::seed_from_u64(0);
        let tree = DecisionTree::fit(&x, &y, 2, &TreeConfig::default(), &mut rng);
        assert_eq!(tree.predict(&[0.0]), 0);
        assert_eq!(tree.predict(&[1.0]), 1);
    }

    #[test]
    fn single_class_dataset_yields_constant_prediction() {
        let x = vec![vec![0.1], vec![0.7], vec![0.3]];
        let y = vec![1, 1, 1];
        let mut rng = StdRng::seed_from_u64(0);
        let tree = DecisionTree::fit(&x, &y, 3, &TreeConfig::default(), &mut rng);
        let p = tree.predict_proba(&[0.5]);
        assert_eq!(p[1], 1.0);
    }

    #[test]
    fn forest_is_deterministic_per_seed() {
        let (x, y) = blobs(100, 5);
        let a = RandomForest::fit(&x, &y, 2, 5, 11);
        let b = RandomForest::fit(&x, &y, 2, 5, 11);
        assert_eq!(a.predict_proba(&[0.4, 0.6]), b.predict_proba(&[0.4, 0.6]));
    }

    #[test]
    fn depth_limit_is_respected_via_generalization() {
        // With depth 1 the tree can make at most one split; on XOR-like data
        // accuracy must stay near chance, proving the limit binds.
        let x = vec![
            vec![0.0, 0.0], vec![1.0, 1.0], vec![0.0, 1.0], vec![1.0, 0.0],
            vec![0.1, 0.1], vec![0.9, 0.9], vec![0.1, 0.9], vec![0.9, 0.1],
        ];
        let y = vec![0, 0, 1, 1, 0, 0, 1, 1];
        let mut rng = StdRng::seed_from_u64(0);
        let config = TreeConfig { max_depth: 1, min_samples_split: 2, max_features: None };
        let tree = DecisionTree::fit(&x, &y, 2, &config, &mut rng);
        let correct = x.iter().zip(&y).filter(|(xi, yi)| tree.predict(xi) == **yi).count();
        assert!(correct <= 6, "a depth-1 tree cannot solve XOR, got {correct}/8");
    }
}
