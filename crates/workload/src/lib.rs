//! Workload characterization (§6.2 of the paper).
//!
//! ResTune's static weights need a *meta-feature* per workload that can be
//! computed from SQL text alone, before any tuning observations exist. The
//! paper's pipeline, reproduced here end to end:
//!
//! 1. **SQL generation** ([`sql`]) — each workload family (SYSBENCH, TPC-C,
//!    Twitter, Hotel, Sales) has realistic query templates; a seeded generator
//!    samples a query stream whose read/write mix follows the workload spec.
//!    (In production this is the captured workload window; here the generator
//!    plays that role.)
//! 2. **Reserved-word extraction** ([`tokenizer`]) — variable names and
//!    literals are unbounded and hurt generalization, so only SQL reserved
//!    words survive tokenization.
//! 3. **TF-IDF** ([`tfidf`]) — each query becomes a term-frequency /
//!    inverse-document-frequency vector over the small reserved-word
//!    vocabulary.
//! 4. **Random forest** ([`forest`]) — a from-scratch CART forest classifies
//!    each query into a (log-scaled, discretized) resource-cost class.
//! 5. **Embedding** ([`embed`]) — the workload meta-feature is the average of
//!    the predicted class-probability distributions over the whole stream.
//!
//! Similar workloads (e.g. the Twitter variations W1–W5 of Table 5) produce
//! nearby meta-features; the distances feed the Epanechnikov static weights in
//! `restune-core`.

pub mod embed;
pub mod forest;
pub mod sql;
pub mod tfidf;
pub mod tokenizer;

pub use embed::{WorkloadCharacterizer, WorkloadEmbedding};
pub use forest::{DecisionTree, RandomForest};
pub use sql::{generate_queries, SqlQuery};
pub use tfidf::TfIdfVectorizer;
pub use tokenizer::extract_reserved_words;
