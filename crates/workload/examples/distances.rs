//! Developer aid: prints meta-feature distances from two target workloads to
//! every repository-catalogue workload (the raw material for the static
//! weights of §6.4.1).
//!
//! Run with `cargo run -p restune-workload --example distances --release`.

use dbsim::WorkloadSpec;
use workload::WorkloadCharacterizer;
fn main() {
    let c = WorkloadCharacterizer::train_default(42);
    let suite = WorkloadSpec::repository_catalog();
    let embeds: Vec<_> = suite.iter().map(|w| (w.name.clone(), c.embed_workload(w, 42))).collect();
    let target = c.embed_workload(&WorkloadSpec::sysbench(), 99);
    println!("distances to SYSBENCH target:");
    for (n, e) in &embeds { println!("  {:<24} {:.4}", n, target.distance(e)); }
    let t2 = c.embed_workload(&WorkloadSpec::twitter(), 99);
    println!("distances to Twitter target:");
    for (n, e) in &embeds { println!("  {:<24} {:.4}", n, t2.distance(e)); }
}
