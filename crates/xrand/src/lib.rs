//! Deterministic pseudo-random number generation for the whole workspace.
//!
//! ResTune's claims are statistical (CEI vs EI, RGPE weight convergence,
//! tuning-time reductions), so every experiment must be re-runnable with the
//! same seed on any machine with no external dependencies. This crate is a
//! from-scratch replacement for the subset of the `rand` crate API the
//! workspace actually uses:
//!
//! * [`Rng`] — the raw-entropy trait (`next_u64`);
//! * [`RngExt`] — `random::<T>()`, `random_range(a..b)` / `(a..=b)`, and
//!   `shuffle`;
//! * [`SeedableRng`] — `seed_from_u64` / `from_seed`;
//! * [`rngs::StdRng`] — the concrete generator, a xoshiro256++ seeded
//!   through splitmix64;
//! * [`dist`] — Box–Muller standard-normal helpers.
//!
//! The generator and every derived sampler are fully specified here, so the
//! byte-level output stream is stable across platforms and compiler
//! versions: same seed ⇒ same samples ⇒ same experiment artifacts.

pub mod dist;

/// A source of uniformly distributed random 64-bit words.
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of a generator from an explicit seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a full 256-bit seed.
    fn from_seed(seed: [u8; 32]) -> Self;

    /// Builds a generator by expanding a 64-bit seed with splitmix64 —
    /// the recommended way to seed xoshiro, and the only entry point the
    /// workspace uses.
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let mut bytes = [0u8; 32];
        for chunk in bytes.chunks_exact_mut(8) {
            chunk.copy_from_slice(&sm.next_u64().to_le_bytes());
        }
        Self::from_seed(bytes)
    }
}

/// splitmix64 — the seed expander (Steele, Lea & Flood; public domain
/// reference constants).
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A new stream starting from `seed`.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }
}

impl Rng for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }
}

/// Types that can be drawn uniformly from a generator's raw words.
pub trait Standard: Sized {
    /// One uniform sample.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Element types that can be drawn uniformly from a bounded range.
pub trait UniformSample: Sized {
    /// A sample from `[lo, hi]` (both ends inclusive).
    fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl UniformSample for $t {
            fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                debug_assert!(lo <= hi, "empty range");
                // Width of [lo, hi] as u64; u64::MAX + 1 overflows to 0 and
                // means "the full domain" (only reachable for 64-bit types).
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let span = span + 1;
                // Debiased multiply-shift (Lemire). The rejection loop is
                // deterministic given the generator stream.
                let zone = u64::MAX - (u64::MAX - span + 1) % span;
                loop {
                    let raw = rng.next_u64();
                    if raw <= zone {
                        let offset = ((raw as u128 * span as u128) >> 64) as u64;
                        return ((lo as i128) + offset as i128) as $t;
                    }
                }
            }
        }
    )*};
}

uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl UniformSample for f64 {
    fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        let u: f64 = Standard::sample(rng);
        lo + u * (hi - lo)
    }
}

/// Range shapes accepted by [`RngExt::random_range`].
pub trait SampleRange<T> {
    /// Draws a sample from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: UniformSample + RangeStep> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, self.start, self.end.prev())
    }
}

impl<T: UniformSample> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_inclusive(rng, lo, hi)
    }
}

/// Converts a half-open upper bound to the inclusive one below it.
pub trait RangeStep {
    /// The largest value strictly below `self`.
    fn prev(self) -> Self;
}

macro_rules! int_step {
    ($($t:ty),*) => {$(
        impl RangeStep for $t {
            fn prev(self) -> Self { self - 1 }
        }
    )*};
}

int_step!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl RangeStep for f64 {
    // For floats a `Range` is already sampled as [lo, hi): `Standard` never
    // returns exactly 1.0, so no adjustment is needed.
    fn prev(self) -> Self {
        self
    }
}

/// Convenience sampling methods on any [`Rng`].
pub trait RngExt: Rng {
    /// A uniform sample of `T` (for `f64`: uniform in `[0, 1)`).
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniform sample from `range` (`a..b` or `a..=b`).
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// An in-place Fisher–Yates shuffle.
    fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.random_range(0..=i);
            slice.swap(i, j);
        }
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ (Blackman & Vigna),
    /// a 256-bit-state generator with a 2^256 − 1 period. Unlike `rand`'s
    /// `StdRng`, the algorithm is pinned forever — reproducibility across
    /// versions is the whole point of this crate.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = (self.s[0].wrapping_add(self.s[3]))
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        fn from_seed(seed: [u8; 32]) -> Self {
            let mut s = [0u64; 4];
            for (w, chunk) in s.iter_mut().zip(seed.chunks_exact(8)) {
                *w = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // An all-zero state is the one fixed point of the transition
            // function; nudge it onto the main cycle.
            if s == [0; 4] {
                s = [0x9E3779B97F4A7C15, 0xBF58476D1CE4E5B9, 0x94D049BB133111EB, 1];
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn splitmix_matches_reference_vector() {
        // Reference outputs for seed 1234567 from the public-domain C code.
        let mut sm = SplitMix64::new(1234567);
        let got: Vec<u64> = (0..3).map(|_| sm.next_u64()).collect();
        assert_eq!(got, vec![6457827717110365317, 3203168211198807973, 9817491932198370423]);
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn stream_is_pinned_forever() {
        // Golden values: if this test fails, the generator changed and every
        // seeded experiment artifact in the repo silently shifted.
        let mut rng = StdRng::seed_from_u64(0);
        let got: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        let again: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(0);
            (0..4).map(|_| r.next_u64()).collect()
        };
        assert_eq!(got, again);
        // The first word must be non-trivial (catches accidental zero state).
        assert_ne!(got[0], 0);
        assert_ne!(got[0], got[1]);
    }

    #[test]
    fn f64_is_uniform_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let v: f64 = rng.random();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
    }

    #[test]
    fn random_range_covers_and_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.random_range(0..10usize);
            seen[v] = true;
        }
        assert!(seen.iter().all(|s| *s), "all strata hit: {seen:?}");
        for _ in 0..1000 {
            let v = rng.random_range(5..=7u32);
            assert!((5..=7).contains(&v));
            let f = rng.random_range(-2.0..3.0f64);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn range_distribution_is_unbiased() {
        // Chi-square-ish sanity check on a non-power-of-two span (exercises
        // the Lemire rejection path).
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = [0usize; 3];
        let n = 30_000;
        for _ in 0..n {
            counts[rng.random_range(0..3usize)] += 1;
        }
        for c in counts {
            let rel = c as f64 / (n as f64 / 3.0);
            assert!((rel - 1.0).abs() < 0.05, "bucket off by {rel}");
        }
    }

    #[test]
    fn shuffle_is_a_permutation_and_deterministic() {
        let mut a: Vec<u32> = (0..50).collect();
        let mut b = a.clone();
        StdRng::seed_from_u64(5).shuffle(&mut a);
        StdRng::seed_from_u64(5).shuffle(&mut b);
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(a, sorted, "shuffle left the slice in order");
    }

    #[test]
    fn rng_works_through_mut_references_and_dyn() {
        fn take_generic<R: Rng + ?Sized>(rng: &mut R) -> u64 {
            rng.random::<u64>()
        }
        let mut rng = StdRng::seed_from_u64(9);
        let _ = take_generic(&mut rng);
        let dynref: &mut dyn Rng = &mut rng;
        let _ = take_generic(dynref);
    }
}
