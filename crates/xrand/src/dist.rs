//! Non-uniform distributions: Box–Muller Gaussian sampling.
//!
//! The GP stack needs standard-normal draws for posterior sampling and
//! hyperparameter restart perturbations; keeping the transform here (rather
//! than in each consumer) pins one shared, seeded definition.

use crate::{Rng, RngExt};

/// Draws one standard-normal sample via the Box–Muller transform.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Avoid ln(0) by sampling u1 from the half-open (0, 1].
    let u1: f64 = 1.0 - rng.random::<f64>();
    let u2: f64 = rng.random::<f64>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Fills a vector with `n` standard-normal samples.
pub fn standard_normal_vec<R: Rng + ?Sized>(rng: &mut R, n: usize) -> Vec<f64> {
    (0..n).map(|_| standard_normal(rng)).collect()
}

/// Draws from `N(mean, std^2)`.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, std: f64) -> f64 {
    mean + std * standard_normal(rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn standard_normal_moments() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let samples = standard_normal_vec(&mut rng, n);
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn normal_shifts_and_scales() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| normal(&mut rng, 5.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn samples_are_finite() {
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..10_000 {
            assert!(standard_normal(&mut rng).is_finite());
        }
    }
}
