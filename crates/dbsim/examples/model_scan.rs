//! Developer aid: prints default vs hand-tuned model outputs per workload.
//!
//! Run with `cargo run -p restune-dbsim --example model_scan`.

use dbsim::{Configuration, InstanceType, SimulatedDbms, WorkloadSpec};

fn main() {
    println!(
        "{:<22} {:>8} {:>8} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "workload", "cpu_def", "cpu_tun", "tps_def", "tps_tun", "p99_def", "p99_tun", "cap_def"
    );
    for w in WorkloadSpec::evaluation_suite() {
        for inst in [InstanceType::A, InstanceType::B] {
            let dbms = SimulatedDbms::new(inst, w.clone(), 0).with_noise(0.0);
            let def = dbms.evaluate_noiseless(&Configuration::dba_default());
            let tuned = Configuration::dba_default()
                .with("innodb_thread_concurrency", (inst.cores() as f64 * 0.8).round())
                .with("innodb_spin_wait_delay", 0.0)
                .with("innodb_sync_spin_loops", 4.0)
                .with("innodb_lru_scan_depth", 256.0)
                .with("innodb_adaptive_hash_index", 0.0)
                .with("innodb_old_blocks_pct", 12.0)
                .with("innodb_purge_threads", 1.0);
            let tun = dbms.evaluate_noiseless(&tuned);
            let bd = dbms.breakdown(&Configuration::dba_default());
            println!(
                "{:<22} {:>8.1} {:>8.1} {:>9.0} {:>9.0} {:>9.1} {:>9.1} {:>9.0}",
                format!("{}@{}", w.name, inst.name()),
                def.resources.cpu_pct,
                tun.resources.cpu_pct,
                def.tps,
                tun.tps,
                def.p99_ms,
                tun.p99_ms,
                bd.capacity_tps,
            );
        }
    }
    // IO view on instance E (paper §7.5 setting).
    println!("\nIO on E (pool fixed at default):");
    for w in [WorkloadSpec::sysbench().with_data_gb(30.0), WorkloadSpec::tpcc().with_data_gb(100.0)] {
        let dbms = SimulatedDbms::new(InstanceType::E, w.clone(), 0).with_noise(0.0);
        let def = dbms.evaluate_noiseless(&Configuration::dba_default());
        let tuned = Configuration::dba_default()
            .with("innodb_max_dirty_pages_pct", 95.0)
            .with("innodb_max_dirty_pages_pct_lwm", 0.0)
            .with("innodb_log_file_size_mb", 4096.0)
            .with("innodb_flush_neighbors", 0.0)
            .with("innodb_doublewrite", 0.0)
            .with("innodb_flush_log_at_trx_commit", 2.0)
            .with("sync_binlog", 0.0)
            .with("innodb_io_capacity", 8000.0);
        let tun = dbms.evaluate_noiseless(&tuned);
        println!(
            "{:<22} bps {:>7.0}->{:>7.0}  iops {:>7.0}->{:>7.0}  tps {:>7.0}->{:>7.0} p99 {:>6.1}->{:>6.1}",
            w.name, def.resources.io_mbps, tun.resources.io_mbps,
            def.resources.iops, tun.resources.iops, def.tps, tun.tps, def.p99_ms, tun.p99_ms
        );
    }
    // Memory view on E.
    println!("\nMemory on E:");
    for w in [WorkloadSpec::sysbench().with_data_gb(30.0), WorkloadSpec::tpcc().with_data_gb(100.0)] {
        let dbms = SimulatedDbms::new(InstanceType::E, w.clone(), 0).with_noise(0.0);
        let def = dbms.evaluate_noiseless(&Configuration::dba_default());
        let lean = Configuration::dba_default()
            .with("innodb_buffer_pool_frac", 0.22)
            .with("sort_buffer_size_kb", 512.0)
            .with("join_buffer_size_kb", 512.0)
            .with("read_buffer_size_kb", 128.0)
            .with("tmp_table_size_mb", 32.0)
            .with("key_buffer_size_mb", 8.0);
        let tun = dbms.evaluate_noiseless(&lean);
        println!(
            "{:<22} mem {:>6.1}->{:>6.1} GB  tps {:>7.0}->{:>7.0}  p99 {:>6.1}->{:>6.1}",
            w.name, def.resources.mem_gb, tun.resources.mem_gb, def.tps, tun.tps, def.p99_ms, tun.p99_ms
        );
    }
    // Twitter 3-knob case study on A.
    println!("\nTwitter case study (A):");
    let dbms = SimulatedDbms::new(InstanceType::A, WorkloadSpec::twitter(), 0).with_noise(0.0);
    let def = dbms.evaluate_noiseless(&Configuration::dba_default());
    let best = Configuration::dba_default()
        .with("innodb_thread_concurrency", 13.0)
        .with("innodb_spin_wait_delay", 0.0)
        .with("innodb_lru_scan_depth", 356.0);
    let tun = dbms.evaluate_noiseless(&best);
    println!(
        "default cpu {:.1}% tps {:.0} p99 {:.1} | tuned cpu {:.1}% tps {:.0} p99 {:.1}",
        def.resources.cpu_pct, def.tps, def.p99_ms,
        tun.resources.cpu_pct, tun.tps, tun.p99_ms
    );
}
