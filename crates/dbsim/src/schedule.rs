//! Deterministic workload schedules: the workload as a *dynamic* entity.
//!
//! A [`WorkloadSchedule`] evolves a session's base [`WorkloadSpec`] as a pure
//! function of the evaluation index: piecewise phases (a new mix takes over
//! at a known point) joined by smooth drifts (request rate, read/write ratio,
//! and per-query shape interpolate over a ramp window). Attached to a
//! [`crate::SimulatedDbms`] via [`crate::SimulatedDbms::with_schedule`], the
//! effective workload is recomputed before every evaluation — so the same
//! seeded session replays the same drifting traffic bit-for-bit, on any
//! machine, at any worker count.
//!
//! Determinism contract: `effective(base, idx)` reads no ambient state and
//! draws no RNG at query time. The only randomness is *construction-time*
//! jitter in the canned builders, seeded through the shared
//! [`crate::seed::domain_rng`] helper under [`crate::seed::SCHEDULE_DOMAIN`]
//! so schedule seeds can never alias fleet-tenant jitter seeds.

use crate::seed::{domain_rng, SCHEDULE_DOMAIN};
use crate::workload::WorkloadSpec;
use xrand::RngExt;

/// One scheduled transition: from whatever workload precedes it toward
/// `spec`, starting at eval index `start` and interpolating over `ramp`
/// evaluations (`ramp == 0` switches instantaneously).
#[derive(Debug, Clone, PartialEq)]
pub struct DriftPhase {
    /// Eval index at which the transition begins.
    pub start: u64,
    /// Evaluations over which the continuous fields interpolate.
    pub ramp: u64,
    /// The workload in effect once the transition completes.
    pub spec: WorkloadSpec,
}

/// A deterministic, seeded schedule of workload phases and drifts.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSchedule {
    seed: u64,
    phases: Vec<DriftPhase>,
}

/// Cubic smoothstep: C¹-continuous ramp from 0 to 1.
fn smoothstep(t: f64) -> f64 {
    let t = t.clamp(0.0, 1.0);
    t * t * (3.0 - 2.0 * t)
}

fn lerp(a: f64, b: f64, t: f64) -> f64 {
    a + (b - a) * t
}

/// Interpolates the continuous workload fields `t` of the way from `a` to
/// `b`; discrete fields (family, name, table count) switch at the midpoint.
fn blend(a: &WorkloadSpec, b: &WorkloadSpec, t: f64) -> WorkloadSpec {
    let late = t >= 0.5;
    let disc = if late { b } else { a };
    WorkloadSpec {
        name: disc.name.clone(),
        kind: disc.kind,
        tables: disc.tables,
        threads: lerp(a.threads as f64, b.threads as f64, t).round().max(1.0) as u32,
        data_gb: lerp(a.data_gb, b.data_gb, t),
        read_parts: lerp(a.read_parts, b.read_parts, t),
        write_parts: lerp(a.write_parts, b.write_parts, t),
        // A rate-bounded and a closed-loop workload have no common axis to
        // interpolate on; the open/closed decision switches with the family.
        request_rate: match (a.request_rate, b.request_rate) {
            (Some(ra), Some(rb)) => Some(lerp(ra, rb, t)),
            _ => disc.request_rate,
        },
        think_time_ms: lerp(a.think_time_ms, b.think_time_ms, t),
        queries_per_txn: lerp(a.queries_per_txn, b.queries_per_txn, t),
        base_cpu_us_per_query: lerp(a.base_cpu_us_per_query, b.base_cpu_us_per_query, t),
        pages_per_query: lerp(a.pages_per_query, b.pages_per_query, t),
        lock_contention_base: lerp(a.lock_contention_base, b.lock_contention_base, t),
        skew: lerp(a.skew, b.skew, t),
        tmp_table_frac: lerp(a.tmp_table_frac, b.tmp_table_frac, t),
        log_bytes_per_txn: lerp(a.log_bytes_per_txn, b.log_bytes_per_txn, t),
    }
}

impl WorkloadSchedule {
    /// An empty (static) schedule; add transitions with
    /// [`WorkloadSchedule::phase_at`] / [`WorkloadSchedule::drift_to`].
    pub fn new(seed: u64) -> Self {
        WorkloadSchedule { seed, phases: Vec::new() }
    }

    /// The schedule's seed (construction-time jitter domain).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Whether the schedule has no transitions at all.
    pub fn is_static(&self) -> bool {
        self.phases.is_empty()
    }

    /// Eval index of the first transition, if any.
    pub fn first_transition(&self) -> Option<u64> {
        self.phases.first().map(|p| p.start)
    }

    /// The scheduled transitions, in order.
    pub fn phases(&self) -> &[DriftPhase] {
        &self.phases
    }

    /// Adds an instantaneous phase switch to `spec` at eval index `start`.
    pub fn phase_at(self, start: u64, spec: WorkloadSpec) -> Self {
        self.drift_to(start, 0, spec)
    }

    /// Adds a smooth drift toward `spec` starting at `start` over `ramp`
    /// evaluations. Transitions must be appended in order and must not
    /// overlap.
    pub fn drift_to(mut self, start: u64, ramp: u64, spec: WorkloadSpec) -> Self {
        if let Some(last) = self.phases.last() {
            assert!(
                last.start + last.ramp <= start,
                "drift phases must be appended in order and must not overlap \
                 (previous ends at {}, new starts at {start})",
                last.start + last.ramp
            );
        }
        self.phases.push(DriftPhase { start, ramp, spec });
        self
    }

    /// The canned OLTP→OLAP drift used by benches and CI smoke: the base
    /// workload runs unchanged until `at`, then drifts into the OLAP
    /// reporting mix over `ramp` evaluations. The schedule seed jitters the
    /// OLAP target's intensity a few percent (construction-time only), so
    /// distinct seeds produce genuinely distinct — but each individually
    /// deterministic — drift trajectories.
    pub fn oltp_to_olap(seed: u64, at: u64, ramp: u64) -> Self {
        let mut rng = domain_rng(SCHEDULE_DOMAIN, seed);
        let mut target = WorkloadSpec::olap();
        target.base_cpu_us_per_query *= 0.95 + 0.10 * rng.random::<f64>();
        target.pages_per_query *= 0.95 + 0.10 * rng.random::<f64>();
        target.tmp_table_frac = (target.tmp_table_frac * (0.95 + 0.10 * rng.random::<f64>())).min(1.0);
        WorkloadSchedule::new(seed).drift_to(at, ramp, target)
    }

    /// The workload in effect at evaluation `idx`, derived from `base` (the
    /// spec the session started with). Pure and RNG-free: the same `(base,
    /// idx)` always yields the same spec.
    pub fn effective(&self, base: &WorkloadSpec, idx: u64) -> WorkloadSpec {
        let mut current = base.clone();
        for phase in &self.phases {
            if idx < phase.start {
                break;
            }
            // The last ramp step lands *exactly* on the target (a clone, not
            // a t=1 lerp, which would leave float dust on some fields).
            if phase.ramp == 0 || idx + 1 >= phase.start + phase.ramp {
                current = phase.spec.clone();
            } else {
                // First drifted eval takes one ramp step.
                let t = (idx - phase.start + 1) as f64 / phase.ramp as f64;
                current = blend(&current, &phase.spec, smoothstep(t));
            }
        }
        current
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_schedule_is_the_identity() {
        let schedule = WorkloadSchedule::new(3);
        let base = WorkloadSpec::twitter();
        assert!(schedule.is_static());
        for idx in [0, 1, 10, 1000] {
            assert_eq!(schedule.effective(&base, idx), base);
        }
    }

    #[test]
    fn effective_is_a_pure_function_of_base_and_index() {
        let schedule = WorkloadSchedule::oltp_to_olap(7, 10, 6);
        let base = WorkloadSpec::twitter();
        for idx in 0..30 {
            assert_eq!(schedule.effective(&base, idx), schedule.effective(&base, idx));
        }
        assert_ne!(
            WorkloadSchedule::oltp_to_olap(7, 10, 6),
            WorkloadSchedule::oltp_to_olap(8, 10, 6),
            "schedule seeds must produce distinct drift targets"
        );
    }

    #[test]
    fn drift_interpolates_smoothly_and_lands_on_the_target() {
        let target = WorkloadSpec::olap();
        let schedule = WorkloadSchedule::new(0).drift_to(5, 4, target.clone());
        let base = WorkloadSpec::twitter();
        // Before the drift: untouched.
        assert_eq!(schedule.effective(&base, 4), base);
        // Mid-ramp: strictly between base and target on the continuous axes.
        let mid = schedule.effective(&base, 6);
        assert!(mid.base_cpu_us_per_query > base.base_cpu_us_per_query);
        assert!(mid.base_cpu_us_per_query < target.base_cpu_us_per_query);
        // Ramp monotone on a drifting axis.
        let costs: Vec<f64> =
            (5..9).map(|i| schedule.effective(&base, i).base_cpu_us_per_query).collect();
        assert!(costs.windows(2).all(|w| w[1] > w[0]), "ramp not monotone: {costs:?}");
        // Last ramp step and beyond: exactly the target.
        assert_eq!(schedule.effective(&base, 8), target);
        assert_eq!(schedule.effective(&base, 100), target);
    }

    #[test]
    fn discrete_fields_switch_at_the_ramp_midpoint() {
        let schedule = WorkloadSchedule::new(0).drift_to(0, 10, WorkloadSpec::olap());
        let base = WorkloadSpec::twitter();
        assert_eq!(schedule.effective(&base, 0).kind, base.kind);
        assert_eq!(schedule.effective(&base, 9).kind, WorkloadSpec::olap().kind);
    }

    #[test]
    fn instantaneous_phase_switch_has_no_ramp() {
        let schedule = WorkloadSchedule::new(0).phase_at(3, WorkloadSpec::sales());
        let base = WorkloadSpec::twitter();
        assert_eq!(schedule.effective(&base, 2), base);
        assert_eq!(schedule.effective(&base, 3), WorkloadSpec::sales());
    }

    #[test]
    #[should_panic(expected = "must not overlap")]
    fn overlapping_phases_are_rejected() {
        let _ = WorkloadSchedule::new(0)
            .drift_to(5, 10, WorkloadSpec::sales())
            .drift_to(8, 2, WorkloadSpec::olap());
    }

    #[test]
    fn closed_loop_target_switches_rate_mode_with_the_family() {
        // Twitter is rate-bounded, OLAP is closed-loop: the Option flips at
        // the midpoint instead of interpolating across modes.
        let schedule = WorkloadSchedule::new(0).drift_to(0, 10, WorkloadSpec::olap());
        let base = WorkloadSpec::twitter();
        assert!(schedule.effective(&base, 1).request_rate.is_some());
        assert!(schedule.effective(&base, 9).request_rate.is_none());
    }
}
