//! An analytic, InnoDB-style DBMS performance simulator.
//!
//! The ResTune paper evaluates against MySQL 5.7 RDS instances in Alibaba's
//! cloud; that testbed is not reproducible offline, so this crate plays the
//! role of the *database under test*. A tuning algorithm only ever observes
//! the black-box map
//!
//! ```text
//! configuration θ  →  (resource utilization, throughput, p99 latency)
//! ```
//!
//! and what matters for reproducing the paper's results is the *shape* of that
//! map, which this simulator models explicitly:
//!
//! * throughput of rate-bounded workloads plateaus at the client request rate
//!   while CPU varies widely across configurations (the paper's Figure 1
//!   motivation — headroom for resource-oriented tuning),
//! * unconstrained resource minimisation collapses throughput (throttling
//!   concurrency/flushing below what the SLA needs), which is why constrained
//!   EI is required,
//! * concurrency admission (`innodb_thread_concurrency`), spin-wait knobs,
//!   background flushing (`innodb_io_capacity`, `innodb_lru_scan_depth`,
//!   page cleaners) and buffer sizing trade resource against performance with
//!   workload-dependent optima,
//! * similar workloads have similar response surfaces; different hardware
//!   rescales those surfaces (the property ResTune's rank-based transfer
//!   exploits and OtterTune's distance-based mapping trips over).
//!
//! The model is deterministic given a seed; every evaluation applies a small
//! multiplicative observation noise (~1.5 %), mirroring the paper's 5 %
//! measurement tolerance.

pub mod dbms;
pub mod fault;
pub mod instance;
pub mod knobs;
pub mod metrics;
pub mod model;
pub mod schedule;
pub mod seed;
pub mod workload;

pub use dbms::{Observation, SimulatedDbms};
pub use fault::{EvalOutcome, FaultKind, FaultPlan};
pub use instance::InstanceType;
pub use knobs::{Configuration, KnobDef, KnobKind, KnobRegistry, KnobSet};
pub use metrics::{InternalMetrics, ResourceUsage};
pub use schedule::{DriftPhase, WorkloadSchedule};
pub use workload::{WorkloadKind, WorkloadSpec};
