//! Cloud instance types from Table 1 of the paper.


/// The six hardware configurations used in the paper's evaluation (Table 1).
///
/// | | A | B | C | D | E | F |
/// |---|---|---|---|---|---|---|
/// | CPU | 48 | 8 | 4 | 16 | 32 | 64 |
/// | RAM (GB) | 12 | 12 | 8 | 32 | 64 | 128 |
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InstanceType {
    A,
    B,
    C,
    D,
    E,
    F,
}

impl InstanceType {
    /// All six instance types in Table 1 order.
    pub const ALL: [InstanceType; 6] = [
        InstanceType::A,
        InstanceType::B,
        InstanceType::C,
        InstanceType::D,
        InstanceType::E,
        InstanceType::F,
    ];

    /// Number of CPU cores.
    pub fn cores(&self) -> u32 {
        match self {
            InstanceType::A => 48,
            InstanceType::B => 8,
            InstanceType::C => 4,
            InstanceType::D => 16,
            InstanceType::E => 32,
            InstanceType::F => 64,
        }
    }

    /// RAM in gigabytes.
    pub fn ram_gb(&self) -> f64 {
        match self {
            InstanceType::A => 12.0,
            InstanceType::B => 12.0,
            InstanceType::C => 8.0,
            InstanceType::D => 32.0,
            InstanceType::E => 64.0,
            InstanceType::F => 128.0,
        }
    }

    /// Storage device IOPS ceiling (cloud SSD class scales mildly with size).
    pub fn max_iops(&self) -> f64 {
        30_000.0 + 1_500.0 * self.cores() as f64
    }

    /// Storage bandwidth ceiling in MB/s.
    pub fn max_io_mbps(&self) -> f64 {
        800.0 + 40.0 * self.cores() as f64
    }

    /// Short display name.
    pub fn name(&self) -> &'static str {
        match self {
            InstanceType::A => "A",
            InstanceType::B => "B",
            InstanceType::C => "C",
            InstanceType::D => "D",
            InstanceType::E => "E",
            InstanceType::F => "F",
        }
    }
}

minjson::json_enum!(InstanceType { A, B, C, D, E, F });

impl std::fmt::Display for InstanceType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Instance {} ({} cores, {} GB)", self.name(), self.cores(), self.ram_gb())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_values() {
        assert_eq!(InstanceType::A.cores(), 48);
        assert_eq!(InstanceType::A.ram_gb(), 12.0);
        assert_eq!(InstanceType::B.cores(), 8);
        assert_eq!(InstanceType::C.ram_gb(), 8.0);
        assert_eq!(InstanceType::D.cores(), 16);
        assert_eq!(InstanceType::E.ram_gb(), 64.0);
        assert_eq!(InstanceType::F.cores(), 64);
    }

    #[test]
    fn io_ceilings_scale_with_cores() {
        assert!(InstanceType::F.max_iops() > InstanceType::C.max_iops());
        assert!(InstanceType::F.max_io_mbps() > InstanceType::C.max_io_mbps());
    }
}
