//! The simulated DBMS instance tuners evaluate against.
//!
//! Wraps the deterministic analytic model with seeded multiplicative
//! observation noise and a simulated replay clock, mirroring how ResTune's
//! Target Workload Replay component evaluates a recommended configuration
//! (§4: apply knobs → replay the captured workload window → collect resource,
//! throughput and latency observations).

use crate::fault::{EvalOutcome, FaultKind, FaultPlan};
use crate::instance::InstanceType;
use crate::knobs::Configuration;
use crate::metrics::{InternalMetrics, ResourceUsage};
use crate::model::{evaluate_raw, PerfBreakdown};
use crate::schedule::WorkloadSchedule;
use crate::workload::WorkloadSpec;
use xrand::rngs::StdRng;
use xrand::{RngExt, SeedableRng};

/// One evaluation of a configuration: what the tuning loop appends to its
/// observation history `H = {(θ, f_res, f_tps, f_lat)}` (§5.1).
#[derive(Debug, Clone, PartialEq)]
pub struct Observation {
    /// The configuration that was applied.
    pub config: Configuration,
    /// Observed resource utilization.
    pub resources: ResourceUsage,
    /// Observed throughput, txn/s.
    pub tps: f64,
    /// Observed 99th-percentile latency, ms.
    pub p99_ms: f64,
    /// Internal runtime metrics (for OtterTune mapping / CDBTune state).
    pub internal: InternalMetrics,
    /// Simulated wall-clock seconds the replay took.
    pub replay_seconds: f64,
}

/// A copy instance of the target DBMS plus a captured workload window.
///
/// # Examples
///
/// ```
/// use dbsim::{Configuration, InstanceType, SimulatedDbms, WorkloadSpec};
///
/// let mut dbms = SimulatedDbms::new(InstanceType::A, WorkloadSpec::twitter(), 7);
/// let default = dbms.evaluate_default();
/// // Throttling InnoDB concurrency on a 512-connection workload saves CPU...
/// let tuned = Configuration::dba_default().with("innodb_thread_concurrency", 16.0);
/// let obs = dbms.evaluate(&tuned);
/// assert!(obs.resources.cpu_pct < default.resources.cpu_pct);
/// // ...while the request-rate-bounded throughput holds (Figure 1's point).
/// assert!(obs.tps > 0.9 * default.tps);
/// ```
#[derive(Debug, Clone)]
pub struct SimulatedDbms {
    instance: InstanceType,
    workload: WorkloadSpec,
    seed: u64,
    noise: f64,
    evals: u64,
    fault_plan: FaultPlan,
    /// Noiseless default-configuration throughput, cached on first use by
    /// the structural-timeout check. Invalidated whenever the scheduled
    /// workload changes, so the timeout reference tracks current traffic.
    baseline_tps: Option<f64>,
    /// Dynamic-workload schedule; `None` (the default) leaves the captured
    /// workload frozen, bit-identical to the pre-schedule simulator.
    schedule: Option<Box<ScheduleState>>,
}

/// A schedule plus the base spec it derives from (the workload captured when
/// the schedule was attached).
#[derive(Debug, Clone)]
struct ScheduleState {
    base: WorkloadSpec,
    schedule: WorkloadSchedule,
}

impl SimulatedDbms {
    /// Standard observation noise (multiplicative std-dev). The paper accepts
    /// a 5 % deviation when evaluating metrics; 1.5 % noise keeps runs
    /// realistic without drowning small effects.
    pub const DEFAULT_NOISE: f64 = 0.015;

    /// Creates a DBMS copy for `workload` on `instance`.
    pub fn new(instance: InstanceType, workload: WorkloadSpec, seed: u64) -> Self {
        SimulatedDbms {
            instance,
            workload,
            seed,
            noise: Self::DEFAULT_NOISE,
            evals: 0,
            fault_plan: FaultPlan::none(),
            baseline_tps: None,
            schedule: None,
        }
    }

    /// Overrides the observation-noise level (0 disables noise).
    pub fn with_noise(mut self, noise: f64) -> Self {
        self.noise = noise.max(0.0);
        self
    }

    /// Installs a fault schedule; [`SimulatedDbms::evaluate_outcome`] applies
    /// it. The default plan is inert.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = plan;
        self
    }

    /// The installed fault schedule.
    pub fn fault_plan(&self) -> FaultPlan {
        self.fault_plan
    }

    /// Attaches a dynamic-workload schedule. The workload captured at attach
    /// time becomes the schedule's base spec; before every evaluation the
    /// effective workload is recomputed from `(base, eval index)`, so the
    /// drifting traffic replays bit-identically run to run. A static
    /// (empty) schedule leaves behavior bit-identical to no schedule.
    pub fn with_schedule(mut self, schedule: WorkloadSchedule) -> Self {
        self.schedule = Some(Box::new(ScheduleState { base: self.workload.clone(), schedule }));
        self
    }

    /// The attached dynamic-workload schedule, if any.
    pub fn schedule(&self) -> Option<&WorkloadSchedule> {
        self.schedule.as_ref().map(|s| &s.schedule)
    }

    /// Re-derives the effective workload for the upcoming evaluation index.
    /// When the scheduled workload actually moves, the cached baseline
    /// throughput is dropped so the structural-timeout reference is
    /// recomputed against current traffic.
    fn advance_workload(&mut self) {
        let Some(state) = self.schedule.as_ref() else { return };
        let effective = state.schedule.effective(&state.base, self.evals);
        if effective != self.workload {
            trace::count("dbsim.workload.drift", 1);
            self.workload = effective;
            self.baseline_tps = None;
        }
    }

    /// The instance this copy runs on.
    pub fn instance(&self) -> InstanceType {
        self.instance
    }

    /// The captured workload.
    pub fn workload(&self) -> &WorkloadSpec {
        &self.workload
    }

    /// Number of evaluations performed so far.
    pub fn evaluations(&self) -> u64 {
        self.evals
    }

    /// Evaluates the DBA default configuration (used to set the SLA bounds
    /// λ_tps and λ_lat before tuning starts, §3).
    pub fn evaluate_default(&mut self) -> Observation {
        self.evaluate(&Configuration::dba_default())
    }

    /// Applies `config`, replays the workload window, and returns the
    /// evaluation. Observation noise is seeded by `(dbms seed, eval index)` so
    /// whole experiments are reproducible.
    pub fn evaluate(&mut self, config: &Configuration) -> Observation {
        trace::count("dbsim.evals", 1);
        self.advance_workload();
        let perf = evaluate_raw(self.instance, &self.workload, config);
        let idx = self.evals;
        self.evals += 1;
        trace::count("dbsim.outcome.ok", 1);
        self.observe(config, &perf, idx)
    }

    /// Fault-aware evaluation: applies `config`, replays the window, and
    /// reports what actually happened under the installed [`FaultPlan`].
    ///
    /// With the default (inert) plan this is bit-identical to
    /// [`SimulatedDbms::evaluate`] wrapped in `Ok`. Structural faults are
    /// checked first (they are deterministic in the configuration and charge
    /// no transient-RNG draws); the transient schedule runs on its own RNG
    /// stream keyed by `(dbms seed, plan seed, eval index)`, so it never
    /// perturbs the observation-noise stream of successful evaluations.
    /// Every attempt — success or failure — consumes one evaluation index.
    pub fn evaluate_outcome(&mut self, config: &Configuration) -> EvalOutcome {
        trace::count("dbsim.evals", 1);
        self.advance_workload();
        let perf = evaluate_raw(self.instance, &self.workload, config);
        let idx = self.evals;
        self.evals += 1;
        let window = self.replay_window();
        let plan = self.fault_plan;
        if plan.structural {
            if perf.mem_gb > plan.oom_headroom * self.instance.ram_gb() {
                // The kernel kills the server partway through the window;
                // restart + crash recovery still burn operator wall-clock.
                trace::count("dbsim.outcome.crash", 1);
                return EvalOutcome::Crashed {
                    fault: FaultKind::OutOfMemory,
                    replay_seconds: 0.25 * window + 60.0,
                };
            }
            let baseline = self.baseline_tps();
            if perf.tps.max(1.0) < baseline / plan.timeout_stretch {
                // Throughput collapsed: the window cannot finish before the
                // deadline. The clock charges the stretched window (the cap
                // at which the harness gives up).
                trace::count("dbsim.outcome.timeout", 1);
                return EvalOutcome::TimedOut {
                    fault: FaultKind::ReplayTimeout,
                    replay_seconds: window * plan.timeout_stretch,
                };
            }
        }
        if plan.transient_rate > 0.0 {
            let mut rng = StdRng::seed_from_u64(
                self.seed
                    ^ plan.seed.rotate_left(17)
                    ^ idx.wrapping_mul(0xD1B54A32D192ED03),
            );
            if rng.random::<f64>() < plan.transient_rate {
                let shape: f64 = rng.random();
                if shape < 0.5 {
                    trace::count("dbsim.outcome.crash", 1);
                    return EvalOutcome::Crashed {
                        fault: FaultKind::Transient,
                        replay_seconds: 30.0 + 0.5 * window * rng.random::<f64>(),
                    };
                } else if shape < 0.75 {
                    trace::count("dbsim.outcome.timeout", 1);
                    return EvalOutcome::TimedOut {
                        fault: FaultKind::Transient,
                        replay_seconds: window * plan.timeout_stretch,
                    };
                }
                trace::count("dbsim.outcome.partial", 1);
                let completeness = 0.3 + 0.5 * rng.random::<f64>();
                let mut observation = self.observe(config, &perf, idx);
                observation.replay_seconds *= completeness;
                return EvalOutcome::Partial { observation, completeness };
            }
        }
        trace::count("dbsim.outcome.ok", 1);
        EvalOutcome::Ok(self.observe(config, &perf, idx))
    }

    /// Simulated replay-window length in seconds (benchmark workloads replay
    /// a ~3 min window, captured production traces ~5 min).
    fn replay_window(&self) -> f64 {
        if self.workload.request_rate.is_some() {
            182.2
        } else {
            302.0
        }
    }

    /// Noiseless default-configuration throughput (cached), the reference
    /// the structural-timeout check compares against.
    fn baseline_tps(&mut self) -> f64 {
        match self.baseline_tps {
            Some(b) => {
                trace::count("dbsim.baseline_tps.hit", 1);
                b
            }
            None => {
                trace::count("dbsim.baseline_tps.miss", 1);
                let b = evaluate_raw(self.instance, &self.workload, &Configuration::dba_default())
                    .tps
                    .max(1.0);
                self.baseline_tps = Some(b);
                b
            }
        }
    }

    /// Deterministic (noise-free) evaluation, for ground-truth harnesses such
    /// as the grid search of Table 6.
    pub fn evaluate_noiseless(&self, config: &Configuration) -> Observation {
        let perf = evaluate_raw(self.instance, &self.workload, config);
        self.render(config, &perf, |_| 1.0)
    }

    /// Raw model breakdown (for tests, SHAP narratives and calibration).
    pub fn breakdown(&self, config: &Configuration) -> PerfBreakdown {
        evaluate_raw(self.instance, &self.workload, config)
    }

    fn observe(&self, config: &Configuration, perf: &PerfBreakdown, idx: u64) -> Observation {
        let mut rng = StdRng::seed_from_u64(self.seed ^ (idx.wrapping_mul(0x9E3779B97F4A7C15)));
        let noise = self.noise;
        let jitter = move |_: usize| {
            if noise == 0.0 {
                1.0
            } else {
                // Lognormal-ish multiplicative jitter via two uniforms.
                let u: f64 = rng.random::<f64>() + rng.random::<f64>() - 1.0;
                (1.0 + noise * 1.7 * u).max(0.5)
            }
        };
        self.render(config, perf, jitter)
    }

    fn render(
        &self,
        config: &Configuration,
        perf: &PerfBreakdown,
        jitter: impl FnMut(usize) -> f64,
    ) -> Observation {
        let mut jitter = jitter;
        let replay = if self.workload.request_rate.is_some() { 182.2 } else { 302.0 };
        Observation {
            config: config.clone(),
            resources: ResourceUsage {
                cpu_pct: (perf.cpu_pct * jitter(0)).clamp(0.3, 100.0),
                mem_gb: (perf.mem_gb * jitter(1)).max(0.1),
                io_mbps: (perf.io_mbps * jitter(2)).max(0.0),
                iops: (perf.total_iops * jitter(3)).max(0.0),
            },
            tps: (perf.tps * jitter(4)).max(1.0),
            p99_ms: (perf.p99_ms * jitter(5)).max(0.01),
            internal: perf.internal.clone(),
            replay_seconds: replay * (1.0 + 0.002 * (jitter(6) - 1.0)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evaluations_are_reproducible_per_seed() {
        let mut a = SimulatedDbms::new(InstanceType::A, WorkloadSpec::sysbench(), 7);
        let mut b = SimulatedDbms::new(InstanceType::A, WorkloadSpec::sysbench(), 7);
        let config = Configuration::dba_default();
        assert_eq!(a.evaluate(&config), b.evaluate(&config));
        // Second evaluation differs from the first (different noise draw)...
        let second = a.evaluate(&config);
        assert_ne!(second.resources.cpu_pct, b.evaluate_noiseless(&config).resources.cpu_pct);
        // ...but matches the same index on the twin.
        assert_eq!(second, b.evaluate(&config));
    }

    #[test]
    fn noise_stays_within_a_few_percent() {
        let mut dbms = SimulatedDbms::new(InstanceType::A, WorkloadSpec::tpcc(), 3);
        let truth = dbms.evaluate_noiseless(&Configuration::dba_default());
        for _ in 0..50 {
            let obs = dbms.evaluate(&Configuration::dba_default());
            let rel = (obs.resources.cpu_pct - truth.resources.cpu_pct).abs()
                / truth.resources.cpu_pct;
            assert!(rel < 0.12, "noise too large: {rel}");
        }
    }

    #[test]
    fn noiseless_evaluation_matches_breakdown() {
        let dbms =
            SimulatedDbms::new(InstanceType::E, WorkloadSpec::twitter(), 0).with_noise(0.0);
        let config = Configuration::dba_default();
        let obs = dbms.evaluate_noiseless(&config);
        let perf = dbms.breakdown(&config);
        assert_eq!(obs.tps, perf.tps.max(1.0));
        assert_eq!(obs.resources.cpu_pct, perf.cpu_pct.clamp(0.3, 100.0));
    }

    #[test]
    fn replay_time_matches_paper_scale() {
        let mut bench = SimulatedDbms::new(InstanceType::A, WorkloadSpec::sysbench(), 0);
        let obs = bench.evaluate_default();
        assert!((obs.replay_seconds - 182.2).abs() < 2.0, "benchmark replay ≈ 3 min");
        let mut real = SimulatedDbms::new(InstanceType::A, WorkloadSpec::hotel(), 0);
        let obs = real.evaluate_default();
        assert!(obs.replay_seconds > 290.0, "real workloads replay ≈ 5 min");
    }

    #[test]
    fn eval_counter_increments() {
        let mut dbms = SimulatedDbms::new(InstanceType::B, WorkloadSpec::sales(), 1);
        assert_eq!(dbms.evaluations(), 0);
        dbms.evaluate_default();
        dbms.evaluate_default();
        assert_eq!(dbms.evaluations(), 2);
    }

    #[test]
    fn inert_fault_plan_matches_plain_evaluate_bit_for_bit() {
        let mut plain = SimulatedDbms::new(InstanceType::A, WorkloadSpec::twitter(), 7);
        let mut faulty = SimulatedDbms::new(InstanceType::A, WorkloadSpec::twitter(), 7)
            .with_fault_plan(FaultPlan::none());
        let config = Configuration::dba_default().with("innodb_thread_concurrency", 16.0);
        for _ in 0..5 {
            let a = plain.evaluate(&config);
            match faulty.evaluate_outcome(&config) {
                EvalOutcome::Ok(b) => assert_eq!(a, b),
                other => panic!("inert plan produced {other:?}"),
            }
        }
    }

    #[test]
    fn oversized_memory_configuration_crashes_with_oom() {
        // 512 Twitter connections × ~140 MB of per-connection buffers plus an
        // 85 % buffer pool dwarf a 12 GB instance.
        let mut dbms = SimulatedDbms::new(InstanceType::B, WorkloadSpec::twitter(), 3)
            .with_fault_plan(FaultPlan::structural());
        let hog = Configuration::dba_default()
            .with("innodb_buffer_pool_frac", 0.85)
            .with("sort_buffer_size_kb", 65536.0)
            .with("join_buffer_size_kb", 65536.0)
            .with("read_buffer_size_kb", 16384.0);
        match dbms.evaluate_outcome(&hog) {
            EvalOutcome::Crashed { fault: FaultKind::OutOfMemory, replay_seconds } => {
                assert!(replay_seconds > 0.0, "a crash still burns wall-clock");
            }
            other => panic!("expected OOM crash, got {other:?}"),
        }
        // The default configuration on the same box stays fine.
        assert!(dbms.evaluate_outcome(&Configuration::dba_default()).is_ok());
    }

    #[test]
    fn collapsed_throughput_times_out() {
        // One admitted thread against 512 clients at 30 k txn/s collapses
        // throughput far below default/stretch.
        let mut dbms = SimulatedDbms::new(InstanceType::A, WorkloadSpec::twitter(), 3)
            .with_fault_plan(FaultPlan::structural());
        let throttled = Configuration::dba_default().with("innodb_thread_concurrency", 1.0);
        match dbms.evaluate_outcome(&throttled) {
            EvalOutcome::TimedOut { fault: FaultKind::ReplayTimeout, replay_seconds } => {
                assert!(replay_seconds > 182.2, "a timeout charges more than the window");
            }
            other => panic!("expected timeout, got {other:?}"),
        }
    }

    #[test]
    fn transient_schedule_is_deterministic_and_rate_accurate() {
        let schedule = |seed: u64| -> Vec<bool> {
            let mut dbms = SimulatedDbms::new(InstanceType::A, WorkloadSpec::twitter(), seed)
                .with_fault_plan(FaultPlan::none().with_transient_rate(0.2).with_seed(11));
            (0..200).map(|_| !dbms.evaluate_outcome(&Configuration::dba_default()).is_ok()).collect()
        };
        let a = schedule(5);
        assert_eq!(a, schedule(5), "same seeds must replay the same fault schedule");
        assert_ne!(a, schedule(6), "different seeds should draw different schedules");
        let failures = a.iter().filter(|f| **f).count();
        assert!((20..=65).contains(&failures), "~20% of 200 expected, got {failures}");
    }

    #[test]
    fn transient_faults_do_not_perturb_successful_observations() {
        // The transient stream is separate from the noise stream: evaluations
        // that succeed under an active plan match the plain path at the same
        // evaluation index, bit for bit.
        let plan = FaultPlan::none().with_transient_rate(0.3).with_seed(2);
        let mut plain = SimulatedDbms::new(InstanceType::A, WorkloadSpec::sysbench(), 9);
        let mut faulty =
            SimulatedDbms::new(InstanceType::A, WorkloadSpec::sysbench(), 9).with_fault_plan(plan);
        let config = Configuration::dba_default();
        let mut compared = 0;
        for _ in 0..50 {
            let a = plain.evaluate(&config);
            if let EvalOutcome::Ok(b) = faulty.evaluate_outcome(&config) {
                assert_eq!(a, b);
                compared += 1;
            }
        }
        assert!(compared > 20, "expected mostly-successful evaluations");
    }

    #[test]
    fn static_schedule_is_bit_identical_to_no_schedule() {
        let config = Configuration::dba_default().with("innodb_thread_concurrency", 16.0);
        let mut plain = SimulatedDbms::new(InstanceType::A, WorkloadSpec::twitter(), 7);
        let mut scheduled = SimulatedDbms::new(InstanceType::A, WorkloadSpec::twitter(), 7)
            .with_schedule(WorkloadSchedule::new(3));
        for _ in 0..6 {
            assert_eq!(plain.evaluate(&config), scheduled.evaluate(&config));
        }
    }

    #[test]
    fn scheduled_drift_changes_the_effective_workload_deterministically() {
        let run = || {
            let mut dbms = SimulatedDbms::new(InstanceType::A, WorkloadSpec::twitter(), 7)
                .with_schedule(WorkloadSchedule::oltp_to_olap(5, 4, 3));
            (0..10).map(|_| dbms.evaluate(&Configuration::dba_default())).collect::<Vec<_>>()
        };
        let a = run();
        assert_eq!(a, run(), "drifting sessions must replay bit-identically");
        // Pre-drift evaluations match the frozen simulator at the same index;
        // post-drift evaluations diverge (the OLAP mix is far heavier).
        let mut frozen = SimulatedDbms::new(InstanceType::A, WorkloadSpec::twitter(), 7);
        let b: Vec<_> = (0..10).map(|_| frozen.evaluate(&Configuration::dba_default())).collect();
        assert_eq!(a[..4], b[..4]);
        assert_ne!(a[9], b[9]);
    }

    #[test]
    fn drift_invalidates_the_structural_timeout_baseline() {
        // Post-drift, the closed-loop OLAP mix runs orders of magnitude below
        // Twitter's 30k txn/s: if the cached pre-drift baseline survived the
        // drift, every post-drift evaluation would be misjudged a timeout.
        let mut dbms = SimulatedDbms::new(InstanceType::A, WorkloadSpec::twitter(), 3)
            .with_fault_plan(FaultPlan::structural())
            .with_schedule(WorkloadSchedule::new(0).phase_at(2, WorkloadSpec::olap()));
        for i in 0..6 {
            let outcome = dbms.evaluate_outcome(&Configuration::dba_default());
            assert!(outcome.is_ok(), "default config misjudged at eval {i}: {outcome:?}");
        }
    }

    #[test]
    fn partial_outcomes_return_truncated_but_usable_samples() {
        let mut dbms = SimulatedDbms::new(InstanceType::A, WorkloadSpec::twitter(), 1)
            .with_fault_plan(FaultPlan::none().with_transient_rate(0.9).with_seed(4));
        let mut saw_partial = false;
        for _ in 0..60 {
            if let EvalOutcome::Partial { observation, completeness } =
                dbms.evaluate_outcome(&Configuration::dba_default())
            {
                assert!((0.3..0.8).contains(&completeness));
                assert!(observation.tps.is_finite() && observation.tps > 0.0);
                assert!(observation.replay_seconds < 182.2 * 0.81);
                saw_partial = true;
            }
        }
        assert!(saw_partial, "a 90% rate over 60 draws should include partials");
    }
}
