//! The simulated DBMS instance tuners evaluate against.
//!
//! Wraps the deterministic analytic model with seeded multiplicative
//! observation noise and a simulated replay clock, mirroring how ResTune's
//! Target Workload Replay component evaluates a recommended configuration
//! (§4: apply knobs → replay the captured workload window → collect resource,
//! throughput and latency observations).

use crate::instance::InstanceType;
use crate::knobs::Configuration;
use crate::metrics::{InternalMetrics, ResourceUsage};
use crate::model::{evaluate_raw, PerfBreakdown};
use crate::workload::WorkloadSpec;
use xrand::rngs::StdRng;
use xrand::{RngExt, SeedableRng};

/// One evaluation of a configuration: what the tuning loop appends to its
/// observation history `H = {(θ, f_res, f_tps, f_lat)}` (§5.1).
#[derive(Debug, Clone, PartialEq)]
pub struct Observation {
    /// The configuration that was applied.
    pub config: Configuration,
    /// Observed resource utilization.
    pub resources: ResourceUsage,
    /// Observed throughput, txn/s.
    pub tps: f64,
    /// Observed 99th-percentile latency, ms.
    pub p99_ms: f64,
    /// Internal runtime metrics (for OtterTune mapping / CDBTune state).
    pub internal: InternalMetrics,
    /// Simulated wall-clock seconds the replay took.
    pub replay_seconds: f64,
}

/// A copy instance of the target DBMS plus a captured workload window.
///
/// # Examples
///
/// ```
/// use dbsim::{Configuration, InstanceType, SimulatedDbms, WorkloadSpec};
///
/// let mut dbms = SimulatedDbms::new(InstanceType::A, WorkloadSpec::twitter(), 7);
/// let default = dbms.evaluate_default();
/// // Throttling InnoDB concurrency on a 512-connection workload saves CPU...
/// let tuned = Configuration::dba_default().with("innodb_thread_concurrency", 16.0);
/// let obs = dbms.evaluate(&tuned);
/// assert!(obs.resources.cpu_pct < default.resources.cpu_pct);
/// // ...while the request-rate-bounded throughput holds (Figure 1's point).
/// assert!(obs.tps > 0.9 * default.tps);
/// ```
#[derive(Debug, Clone)]
pub struct SimulatedDbms {
    instance: InstanceType,
    workload: WorkloadSpec,
    seed: u64,
    noise: f64,
    evals: u64,
}

impl SimulatedDbms {
    /// Standard observation noise (multiplicative std-dev). The paper accepts
    /// a 5 % deviation when evaluating metrics; 1.5 % noise keeps runs
    /// realistic without drowning small effects.
    pub const DEFAULT_NOISE: f64 = 0.015;

    /// Creates a DBMS copy for `workload` on `instance`.
    pub fn new(instance: InstanceType, workload: WorkloadSpec, seed: u64) -> Self {
        SimulatedDbms { instance, workload, seed, noise: Self::DEFAULT_NOISE, evals: 0 }
    }

    /// Overrides the observation-noise level (0 disables noise).
    pub fn with_noise(mut self, noise: f64) -> Self {
        self.noise = noise.max(0.0);
        self
    }

    /// The instance this copy runs on.
    pub fn instance(&self) -> InstanceType {
        self.instance
    }

    /// The captured workload.
    pub fn workload(&self) -> &WorkloadSpec {
        &self.workload
    }

    /// Number of evaluations performed so far.
    pub fn evaluations(&self) -> u64 {
        self.evals
    }

    /// Evaluates the DBA default configuration (used to set the SLA bounds
    /// λ_tps and λ_lat before tuning starts, §3).
    pub fn evaluate_default(&mut self) -> Observation {
        self.evaluate(&Configuration::dba_default())
    }

    /// Applies `config`, replays the workload window, and returns the
    /// evaluation. Observation noise is seeded by `(dbms seed, eval index)` so
    /// whole experiments are reproducible.
    pub fn evaluate(&mut self, config: &Configuration) -> Observation {
        let perf = evaluate_raw(self.instance, &self.workload, config);
        let idx = self.evals;
        self.evals += 1;
        self.observe(config, &perf, idx)
    }

    /// Deterministic (noise-free) evaluation, for ground-truth harnesses such
    /// as the grid search of Table 6.
    pub fn evaluate_noiseless(&self, config: &Configuration) -> Observation {
        let perf = evaluate_raw(self.instance, &self.workload, config);
        self.render(config, &perf, |_| 1.0)
    }

    /// Raw model breakdown (for tests, SHAP narratives and calibration).
    pub fn breakdown(&self, config: &Configuration) -> PerfBreakdown {
        evaluate_raw(self.instance, &self.workload, config)
    }

    fn observe(&self, config: &Configuration, perf: &PerfBreakdown, idx: u64) -> Observation {
        let mut rng = StdRng::seed_from_u64(self.seed ^ (idx.wrapping_mul(0x9E3779B97F4A7C15)));
        let noise = self.noise;
        let jitter = move |_: usize| {
            if noise == 0.0 {
                1.0
            } else {
                // Lognormal-ish multiplicative jitter via two uniforms.
                let u: f64 = rng.random::<f64>() + rng.random::<f64>() - 1.0;
                (1.0 + noise * 1.7 * u).max(0.5)
            }
        };
        self.render(config, perf, jitter)
    }

    fn render(
        &self,
        config: &Configuration,
        perf: &PerfBreakdown,
        jitter: impl FnMut(usize) -> f64,
    ) -> Observation {
        let mut jitter = jitter;
        let replay = if self.workload.request_rate.is_some() { 182.2 } else { 302.0 };
        Observation {
            config: config.clone(),
            resources: ResourceUsage {
                cpu_pct: (perf.cpu_pct * jitter(0)).clamp(0.3, 100.0),
                mem_gb: (perf.mem_gb * jitter(1)).max(0.1),
                io_mbps: (perf.io_mbps * jitter(2)).max(0.0),
                iops: (perf.total_iops * jitter(3)).max(0.0),
            },
            tps: (perf.tps * jitter(4)).max(1.0),
            p99_ms: (perf.p99_ms * jitter(5)).max(0.01),
            internal: perf.internal.clone(),
            replay_seconds: replay * (1.0 + 0.002 * (jitter(6) - 1.0)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evaluations_are_reproducible_per_seed() {
        let mut a = SimulatedDbms::new(InstanceType::A, WorkloadSpec::sysbench(), 7);
        let mut b = SimulatedDbms::new(InstanceType::A, WorkloadSpec::sysbench(), 7);
        let config = Configuration::dba_default();
        assert_eq!(a.evaluate(&config), b.evaluate(&config));
        // Second evaluation differs from the first (different noise draw)...
        let second = a.evaluate(&config);
        assert_ne!(second.resources.cpu_pct, b.evaluate_noiseless(&config).resources.cpu_pct);
        // ...but matches the same index on the twin.
        assert_eq!(second, b.evaluate(&config));
    }

    #[test]
    fn noise_stays_within_a_few_percent() {
        let mut dbms = SimulatedDbms::new(InstanceType::A, WorkloadSpec::tpcc(), 3);
        let truth = dbms.evaluate_noiseless(&Configuration::dba_default());
        for _ in 0..50 {
            let obs = dbms.evaluate(&Configuration::dba_default());
            let rel = (obs.resources.cpu_pct - truth.resources.cpu_pct).abs()
                / truth.resources.cpu_pct;
            assert!(rel < 0.12, "noise too large: {rel}");
        }
    }

    #[test]
    fn noiseless_evaluation_matches_breakdown() {
        let dbms =
            SimulatedDbms::new(InstanceType::E, WorkloadSpec::twitter(), 0).with_noise(0.0);
        let config = Configuration::dba_default();
        let obs = dbms.evaluate_noiseless(&config);
        let perf = dbms.breakdown(&config);
        assert_eq!(obs.tps, perf.tps.max(1.0));
        assert_eq!(obs.resources.cpu_pct, perf.cpu_pct.clamp(0.3, 100.0));
    }

    #[test]
    fn replay_time_matches_paper_scale() {
        let mut bench = SimulatedDbms::new(InstanceType::A, WorkloadSpec::sysbench(), 0);
        let obs = bench.evaluate_default();
        assert!((obs.replay_seconds - 182.2).abs() < 2.0, "benchmark replay ≈ 3 min");
        let mut real = SimulatedDbms::new(InstanceType::A, WorkloadSpec::hotel(), 0);
        let obs = real.evaluate_default();
        assert!(obs.replay_seconds > 290.0, "real workloads replay ≈ 5 min");
    }

    #[test]
    fn eval_counter_increments() {
        let mut dbms = SimulatedDbms::new(InstanceType::B, WorkloadSpec::sales(), 1);
        assert_eq!(dbms.evaluations(), 0);
        dbms.evaluate_default();
        dbms.evaluate_default();
        assert_eq!(dbms.evaluations(), 2);
    }
}
