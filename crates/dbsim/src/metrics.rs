//! Evaluation outputs: external resource/performance metrics and the internal
//! runtime metrics OtterTune-style mapping and CDBTune's RL state consume.


/// Externally observable resource utilization for one evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResourceUsage {
    /// Database-wide CPU utilization in percent of the instance (0–100).
    pub cpu_pct: f64,
    /// Resident memory in GB.
    pub mem_gb: f64,
    /// Total I/O bandwidth (reads + writes) in MB/s.
    pub io_mbps: f64,
    /// Total I/O operations per second.
    pub iops: f64,
}

impl ResourceUsage {
    /// Selects one scalar by resource kind name ("cpu", "mem", "io_bps",
    /// "iops"). Used by generic harness code; typed callers should read the
    /// fields directly.
    pub fn by_name(&self, name: &str) -> Option<f64> {
        match name {
            "cpu" => Some(self.cpu_pct),
            "mem" => Some(self.mem_gb),
            "io_bps" => Some(self.io_mbps),
            "iops" => Some(self.iops),
            _ => None,
        }
    }
}

/// Internal DBMS runtime metrics, the kind `SHOW GLOBAL STATUS` exposes.
///
/// OtterTune's workload mapping measures Euclidean distances between these
/// vectors; CDBTune uses them as the RL state. Their scales depend on the
/// hardware and request rate — which is exactly why distance-based mapping
/// fails to transfer across hardware (§7.2.3) while ResTune's rank-based
/// weighting does not.
#[derive(Debug, Clone, PartialEq)]
pub struct InternalMetrics {
    /// Buffer pool hit ratio (0–1).
    pub hit_ratio: f64,
    /// Dirty page percentage of the buffer pool (0–100).
    pub dirty_pct: f64,
    /// Lock/mutex waits per second.
    pub lock_waits_per_s: f64,
    /// Spin rounds per second.
    pub spin_rounds_per_s: f64,
    /// OS context switches per second attributable to the DBMS.
    pub ctx_switches_per_s: f64,
    /// Pages read from storage per second.
    pub pages_read_per_s: f64,
    /// Pages written to storage per second.
    pub pages_written_per_s: f64,
    /// Redo log writes per second.
    pub log_writes_per_s: f64,
    /// Threads running inside InnoDB.
    pub threads_running: f64,
    /// Threads held in the server thread cache.
    pub threads_cached: f64,
    /// On-disk temporary tables created per second.
    pub tmp_disk_tables_per_s: f64,
    /// Table-open-cache misses per second.
    pub table_open_misses_per_s: f64,
    /// Redo checkpoint age as a fraction of log capacity (0–1).
    pub checkpoint_age_ratio: f64,
    /// Pending asynchronous reads.
    pub pending_reads: f64,
    /// Pending asynchronous writes.
    pub pending_writes: f64,
    /// Buffer pool fill fraction (0–1).
    pub buffer_pool_util: f64,
    /// User-space CPU share (0–100).
    pub cpu_user_pct: f64,
    /// Kernel CPU share (0–100).
    pub cpu_sys_pct: f64,
    /// CPU time stalled on I/O (0–100).
    pub io_wait_pct: f64,
    /// Queries per second.
    pub qps: f64,
}

impl InternalMetrics {
    /// An all-zero metrics vector: what a crashed or timed-out replay
    /// reports (no `SHOW GLOBAL STATUS` sample was collected).
    pub fn zeroed() -> Self {
        InternalMetrics {
            hit_ratio: 0.0,
            dirty_pct: 0.0,
            lock_waits_per_s: 0.0,
            spin_rounds_per_s: 0.0,
            ctx_switches_per_s: 0.0,
            pages_read_per_s: 0.0,
            pages_written_per_s: 0.0,
            log_writes_per_s: 0.0,
            threads_running: 0.0,
            threads_cached: 0.0,
            tmp_disk_tables_per_s: 0.0,
            table_open_misses_per_s: 0.0,
            checkpoint_age_ratio: 0.0,
            pending_reads: 0.0,
            pending_writes: 0.0,
            buffer_pool_util: 0.0,
            cpu_user_pct: 0.0,
            cpu_sys_pct: 0.0,
            io_wait_pct: 0.0,
            qps: 0.0,
        }
    }

    /// Flattens to a fixed-order vector (for distance computations and RL
    /// state). Order is stable across the workspace.
    pub fn to_vec(&self) -> Vec<f64> {
        vec![
            self.hit_ratio,
            self.dirty_pct,
            self.lock_waits_per_s,
            self.spin_rounds_per_s,
            self.ctx_switches_per_s,
            self.pages_read_per_s,
            self.pages_written_per_s,
            self.log_writes_per_s,
            self.threads_running,
            self.threads_cached,
            self.tmp_disk_tables_per_s,
            self.table_open_misses_per_s,
            self.checkpoint_age_ratio,
            self.pending_reads,
            self.pending_writes,
            self.buffer_pool_util,
            self.cpu_user_pct,
            self.cpu_sys_pct,
            self.io_wait_pct,
            self.qps,
        ]
    }

    /// Number of metrics in [`InternalMetrics::to_vec`].
    pub const DIM: usize = 20;

    /// Metric names aligned with [`InternalMetrics::to_vec`].
    pub fn names() -> [&'static str; Self::DIM] {
        [
            "hit_ratio",
            "dirty_pct",
            "lock_waits_per_s",
            "spin_rounds_per_s",
            "ctx_switches_per_s",
            "pages_read_per_s",
            "pages_written_per_s",
            "log_writes_per_s",
            "threads_running",
            "threads_cached",
            "tmp_disk_tables_per_s",
            "table_open_misses_per_s",
            "checkpoint_age_ratio",
            "pending_reads",
            "pending_writes",
            "buffer_pool_util",
            "cpu_user_pct",
            "cpu_sys_pct",
            "io_wait_pct",
            "qps",
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> InternalMetrics {
        InternalMetrics {
            hit_ratio: 0.99,
            dirty_pct: 20.0,
            lock_waits_per_s: 10.0,
            spin_rounds_per_s: 100.0,
            ctx_switches_per_s: 50.0,
            pages_read_per_s: 200.0,
            pages_written_per_s: 300.0,
            log_writes_per_s: 400.0,
            threads_running: 8.0,
            threads_cached: 32.0,
            tmp_disk_tables_per_s: 1.0,
            table_open_misses_per_s: 2.0,
            checkpoint_age_ratio: 0.3,
            pending_reads: 0.5,
            pending_writes: 0.8,
            buffer_pool_util: 0.95,
            cpu_user_pct: 60.0,
            cpu_sys_pct: 10.0,
            io_wait_pct: 5.0,
            qps: 100_000.0,
        }
    }

    #[test]
    fn to_vec_has_stable_dimension() {
        assert_eq!(sample().to_vec().len(), InternalMetrics::DIM);
        assert_eq!(InternalMetrics::names().len(), InternalMetrics::DIM);
    }

    #[test]
    fn to_vec_order_matches_names() {
        let v = sample().to_vec();
        let names = InternalMetrics::names();
        assert_eq!(v[0], 0.99);
        assert_eq!(names[0], "hit_ratio");
        assert_eq!(v[19], 100_000.0);
        assert_eq!(names[19], "qps");
    }

    #[test]
    fn resource_usage_by_name() {
        let r = ResourceUsage { cpu_pct: 50.0, mem_gb: 8.0, io_mbps: 100.0, iops: 5000.0 };
        assert_eq!(r.by_name("cpu"), Some(50.0));
        assert_eq!(r.by_name("mem"), Some(8.0));
        assert_eq!(r.by_name("io_bps"), Some(100.0));
        assert_eq!(r.by_name("iops"), Some(5000.0));
        assert_eq!(r.by_name("gpu"), None);
    }
}
