//! Configuration-dependent fault model for the simulated replay.
//!
//! The paper's Target Workload Replay (§4) applies a recommended
//! configuration to a live MySQL copy — and a bad knob vector can kill the
//! server (buffer pool plus per-connection memory beyond instance RAM), hang
//! the replay window behind a collapsed throughput, or hand back a truncated
//! sample when the replay client dies early. [`FaultPlan`] models those
//! failure modes on top of the analytic simulator:
//!
//! * **structural faults** are deterministic properties of the configuration
//!   (OOM when the modeled resident set exceeds RAM with headroom, timeout
//!   when predicted throughput collapses below the replay deadline), and
//! * **transient faults** fire from an injectable rate on a seeded RNG
//!   stream independent of the observation-noise stream, so enabling them
//!   does not move a single bit of successful observations.
//!
//! Every failure still charges simulated replay wall-clock: a crashed replay
//! burns part of the window plus recovery, a timeout burns the stretched
//! window up to its cap. The schedule is a pure function of
//! `(dbms seed, plan seed, evaluation index)` — identical seeds replay the
//! identical fault schedule, which is what keeps fault-injected tuning runs
//! bit-reproducible.

use crate::dbms::Observation;

/// What went wrong with one replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The configured memory footprint exceeded instance RAM and the kernel
    /// killed the server mid-replay.
    OutOfMemory,
    /// Predicted throughput collapsed so far below the default that the
    /// replay window could not finish before its deadline.
    ReplayTimeout,
    /// An environment hiccup unrelated to the configuration (network blip,
    /// crashed replay client, noisy neighbor). Retrying may succeed.
    Transient,
}

impl FaultKind {
    /// Whether a retry of the same configuration can plausibly succeed.
    /// Structural faults are deterministic in the configuration; only
    /// transient ones are worth retrying.
    pub fn is_transient(&self) -> bool {
        matches!(self, FaultKind::Transient)
    }
}

/// The result of one fault-aware evaluation ([`crate::SimulatedDbms::evaluate_outcome`]).
#[derive(Debug, Clone, PartialEq)]
pub enum EvalOutcome {
    /// The replay completed and produced a full observation.
    Ok(Observation),
    /// The server died mid-replay; no observation was collected.
    Crashed {
        /// Why it crashed.
        fault: FaultKind,
        /// Simulated wall-clock burned (partial window + restart/recovery).
        replay_seconds: f64,
    },
    /// The replay window did not finish before its deadline.
    TimedOut {
        /// Why it timed out.
        fault: FaultKind,
        /// Simulated wall-clock burned (the stretched window, capped).
        replay_seconds: f64,
    },
    /// The replay client died early but returned a truncated sample. The
    /// observation is usable, with wider error bars than a full window.
    Partial {
        /// The truncated-window observation.
        observation: Observation,
        /// Fraction of the replay window that completed, in (0, 1).
        completeness: f64,
    },
}

impl EvalOutcome {
    /// Simulated wall-clock seconds this attempt charged, success or not.
    pub fn replay_seconds(&self) -> f64 {
        match self {
            EvalOutcome::Ok(obs) => obs.replay_seconds,
            EvalOutcome::Crashed { replay_seconds, .. } => *replay_seconds,
            EvalOutcome::TimedOut { replay_seconds, .. } => *replay_seconds,
            EvalOutcome::Partial { observation, .. } => observation.replay_seconds,
        }
    }

    /// The observation, when one was collected (full or truncated).
    pub fn observation(&self) -> Option<&Observation> {
        match self {
            EvalOutcome::Ok(obs) => Some(obs),
            EvalOutcome::Partial { observation, .. } => Some(observation),
            _ => None,
        }
    }

    /// The fault behind a non-`Ok` outcome (`Partial` counts as transient:
    /// the truncation came from the environment, not the configuration).
    pub fn fault(&self) -> Option<FaultKind> {
        match self {
            EvalOutcome::Ok(_) => None,
            EvalOutcome::Crashed { fault, .. } | EvalOutcome::TimedOut { fault, .. } => {
                Some(*fault)
            }
            EvalOutcome::Partial { .. } => Some(FaultKind::Transient),
        }
    }

    /// Whether the replay completed fully.
    pub fn is_ok(&self) -> bool {
        matches!(self, EvalOutcome::Ok(_))
    }

    /// Whether a retry of the same configuration can plausibly succeed.
    pub fn is_transient(&self) -> bool {
        self.fault().is_some_and(|f| f.is_transient())
    }
}

/// A seeded, deterministic fault schedule for a [`crate::SimulatedDbms`].
///
/// The default plan is fully disabled: `evaluate_outcome` then behaves
/// exactly like the infallible `evaluate`, bit for bit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Probability that any single replay attempt fails transiently.
    pub transient_rate: f64,
    /// Enable configuration-dependent (structural) faults.
    pub structural: bool,
    /// OOM fires when the modeled resident set exceeds
    /// `oom_headroom × instance RAM` (the OS itself needs some of the box).
    pub oom_headroom: f64,
    /// Timeout fires when predicted throughput falls below
    /// `default throughput / timeout_stretch`; the timed-out replay charges
    /// `timeout_stretch × window` wall-clock.
    pub timeout_stretch: f64,
    /// Seed for the transient schedule (independent of the DBMS noise seed).
    pub seed: u64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

impl FaultPlan {
    /// No faults at all — `evaluate_outcome` always returns `Ok`.
    pub fn none() -> Self {
        FaultPlan {
            transient_rate: 0.0,
            structural: false,
            oom_headroom: 1.08,
            timeout_stretch: 4.0,
            seed: 0,
        }
    }

    /// Structural faults only (the realistic production setting: OOM and
    /// throughput-collapse timeouts, no environment flakiness).
    pub fn structural() -> Self {
        FaultPlan { structural: true, ..FaultPlan::none() }
    }

    /// Sets the transient failure rate (clamped to `[0, 1]`).
    pub fn with_transient_rate(mut self, rate: f64) -> Self {
        self.transient_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Sets the transient-schedule seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Whether any fault source is enabled.
    pub fn is_active(&self) -> bool {
        self.structural || self.transient_rate > 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_inert() {
        let plan = FaultPlan::default();
        assert!(!plan.is_active());
        assert_eq!(plan, FaultPlan::none());
    }

    #[test]
    fn transient_rate_is_clamped() {
        assert_eq!(FaultPlan::none().with_transient_rate(3.0).transient_rate, 1.0);
        assert_eq!(FaultPlan::none().with_transient_rate(-1.0).transient_rate, 0.0);
    }

    #[test]
    fn only_transient_faults_are_retryable() {
        assert!(FaultKind::Transient.is_transient());
        assert!(!FaultKind::OutOfMemory.is_transient());
        assert!(!FaultKind::ReplayTimeout.is_transient());
        let crashed = EvalOutcome::Crashed { fault: FaultKind::OutOfMemory, replay_seconds: 1.0 };
        assert!(!crashed.is_transient());
        assert_eq!(crashed.fault(), Some(FaultKind::OutOfMemory));
        assert_eq!(crashed.replay_seconds(), 1.0);
        assert!(crashed.observation().is_none());
    }
}
