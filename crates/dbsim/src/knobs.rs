//! Configuration-knob registry, typed knob definitions, and the normalized
//! `[0,1]^m` encoding the tuners operate in.
//!
//! The paper tunes pre-selected important knobs: **14 for CPU, 20 for I/O and
//! 6 for memory** (§7 "Setting"). This module defines a registry of real
//! MySQL/InnoDB knobs with realistic ranges and deliberately DBA-ish (i.e.
//! safe but resource-wasteful) defaults, and the three pre-selected
//! [`KnobSet`]s with exactly those sizes.

use std::collections::HashMap;
use std::sync::OnceLock;

/// Value domain of a knob.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KnobKind {
    /// Integer-valued within `[min, max]`.
    Integer,
    /// Real-valued within `[min, max]`.
    Float,
    /// `0` or `1`.
    Boolean,
    /// One of `n` ordered levels `0..n` (e.g. `innodb_flush_log_at_trx_commit`).
    Enum(u32),
}

/// Definition of a single tunable knob.
#[derive(Debug, Clone)]
pub struct KnobDef {
    /// MySQL-style knob name (units folded into the name where relevant).
    pub name: &'static str,
    /// Lower bound (natural units).
    pub min: f64,
    /// Upper bound (natural units).
    pub max: f64,
    /// DBA default (natural units).
    pub default: f64,
    /// Value domain.
    pub kind: KnobKind,
    /// Whether the `[0,1]` encoding is logarithmic. Requires `min > 0`.
    pub log_scale: bool,
    /// One-line description of the knob's role.
    pub description: &'static str,
}

impl KnobDef {
    /// Maps a natural-unit value to `[0, 1]`.
    pub fn normalize(&self, value: f64) -> f64 {
        if let KnobKind::Enum(n) = self.kind {
            // Use bin centers so normalize/denormalize round-trips.
            return ((value + 0.5) / n as f64).clamp(0.0, 1.0);
        }
        let v = value.clamp(self.min, self.max);
        let u = if self.log_scale {
            (v.ln() - self.min.ln()) / (self.max.ln() - self.min.ln())
        } else {
            (v - self.min) / (self.max - self.min)
        };
        u.clamp(0.0, 1.0)
    }

    /// Maps a `[0, 1]` value back to natural units, respecting the domain
    /// (integers round, booleans threshold, enums bin).
    pub fn denormalize(&self, unit: f64) -> f64 {
        let u = unit.clamp(0.0, 1.0);
        let raw = if self.log_scale {
            (self.min.ln() + u * (self.max.ln() - self.min.ln())).exp()
        } else {
            self.min + u * (self.max - self.min)
        };
        match self.kind {
            KnobKind::Float => raw,
            KnobKind::Integer => raw.round().clamp(self.min, self.max),
            KnobKind::Boolean => {
                if u >= 0.5 {
                    1.0
                } else {
                    0.0
                }
            }
            KnobKind::Enum(n) => {
                // Partition [0,1] into n bins and round to the nearest bin,
                // as the paper describes for discrete knobs (§3).
                ((u * n as f64).floor().min(n as f64 - 1.0)).max(0.0)
            }
        }
    }
}

/// The full knob registry: an ordered list of [`KnobDef`]s with name lookup.
#[derive(Debug)]
pub struct KnobRegistry {
    knobs: Vec<KnobDef>,
    index: HashMap<&'static str, usize>,
}

impl KnobRegistry {
    fn from_defs(knobs: Vec<KnobDef>) -> Self {
        let mut index = HashMap::with_capacity(knobs.len());
        for (i, k) in knobs.iter().enumerate() {
            let prev = index.insert(k.name, i);
            assert!(prev.is_none(), "duplicate knob {}", k.name);
        }
        KnobRegistry { knobs, index }
    }

    /// The global MySQL/InnoDB knob registry used throughout the workspace.
    pub fn mysql() -> &'static KnobRegistry {
        static REGISTRY: OnceLock<KnobRegistry> = OnceLock::new();
        REGISTRY.get_or_init(|| KnobRegistry::from_defs(mysql_knob_defs()))
    }

    /// Number of knobs.
    pub fn len(&self) -> usize {
        self.knobs.len()
    }

    /// Whether the registry is empty (never true for [`KnobRegistry::mysql`]).
    pub fn is_empty(&self) -> bool {
        self.knobs.is_empty()
    }

    /// Knob definition by position.
    pub fn knob(&self, idx: usize) -> &KnobDef {
        &self.knobs[idx]
    }

    /// Knob definition by name.
    pub fn get(&self, name: &str) -> Option<&KnobDef> {
        self.index.get(name).map(|&i| &self.knobs[i])
    }

    /// Position of a knob by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.index.get(name).copied()
    }

    /// Iterates over all knob definitions in registry order.
    pub fn iter(&self) -> impl Iterator<Item = &KnobDef> {
        self.knobs.iter()
    }

    /// The DBA-default configuration.
    pub fn default_configuration(&self) -> Configuration {
        Configuration { values: self.knobs.iter().map(|k| k.default).collect() }
    }
}

/// A full knob assignment in natural units, aligned with
/// [`KnobRegistry::mysql`] order.
#[derive(Debug, Clone, PartialEq)]
pub struct Configuration {
    values: Vec<f64>,
}

impl Configuration {
    /// The DBA-default configuration.
    pub fn dba_default() -> Self {
        KnobRegistry::mysql().default_configuration()
    }

    /// Value of a knob by name. Panics on unknown names (registry is static,
    /// so an unknown name is a programming error, not an input error).
    pub fn get(&self, name: &str) -> f64 {
        let idx = KnobRegistry::mysql()
            .index_of(name)
            .unwrap_or_else(|| panic!("unknown knob {name}"));
        self.values[idx]
    }

    /// Sets a knob by name (clamped to the knob's range).
    pub fn set(&mut self, name: &str, value: f64) {
        let reg = KnobRegistry::mysql();
        let idx = reg.index_of(name).unwrap_or_else(|| panic!("unknown knob {name}"));
        self.values[idx] = value.clamp(reg.knob(idx).min, reg.knob(idx).max);
    }

    /// Builder-style [`Configuration::set`].
    pub fn with(mut self, name: &str, value: f64) -> Self {
        self.set(name, value);
        self
    }

    /// Raw values in registry order.
    pub fn values(&self) -> &[f64] {
        &self.values
    }
}

impl Default for Configuration {
    fn default() -> Self {
        Configuration::dba_default()
    }
}

/// An ordered subset of knobs forming a tuning search space `[0,1]^m`.
#[derive(Debug, Clone, PartialEq)]
pub struct KnobSet {
    names: Vec<String>,
    indices: Vec<usize>,
}

impl KnobSet {
    /// Builds a knob set from names. Panics on unknown names.
    pub fn new(names: &[&str]) -> Self {
        let reg = KnobRegistry::mysql();
        let indices = names
            .iter()
            .map(|n| reg.index_of(n).unwrap_or_else(|| panic!("unknown knob {n}")))
            .collect();
        KnobSet { names: names.iter().map(|n| n.to_string()).collect(), indices }
    }

    /// The paper's 14-knob CPU tuning set.
    pub fn cpu() -> Self {
        KnobSet::new(&[
            "innodb_thread_concurrency",
            "innodb_spin_wait_delay",
            "innodb_sync_spin_loops",
            "table_open_cache",
            "innodb_lru_scan_depth",
            "innodb_page_cleaners",
            "innodb_purge_threads",
            "innodb_read_io_threads",
            "innodb_write_io_threads",
            "innodb_adaptive_hash_index",
            "innodb_buffer_pool_instances",
            "thread_cache_size",
            "innodb_concurrency_tickets",
            "innodb_sync_array_size",
        ])
    }

    /// The paper's 20-knob I/O tuning set.
    pub fn io() -> Self {
        KnobSet::new(&[
            "innodb_io_capacity",
            "innodb_io_capacity_max",
            "innodb_flush_log_at_trx_commit",
            "sync_binlog",
            "innodb_flush_neighbors",
            "innodb_log_file_size_mb",
            "innodb_log_buffer_size_mb",
            "innodb_max_dirty_pages_pct",
            "innodb_max_dirty_pages_pct_lwm",
            "innodb_adaptive_flushing",
            "innodb_adaptive_flushing_lwm",
            "innodb_doublewrite",
            "innodb_random_read_ahead",
            "innodb_read_ahead_threshold",
            "innodb_flushing_avg_loops",
            "innodb_change_buffering",
            "binlog_cache_size_kb",
            "innodb_old_blocks_pct",
            "innodb_lru_scan_depth",
            "innodb_page_cleaners",
        ])
    }

    /// The paper's 6-knob memory tuning set (buffer pool size is a knob here).
    pub fn memory() -> Self {
        KnobSet::new(&[
            "innodb_buffer_pool_frac",
            "sort_buffer_size_kb",
            "join_buffer_size_kb",
            "read_buffer_size_kb",
            "tmp_table_size_mb",
            "key_buffer_size_mb",
        ])
    }

    /// The 3-knob CPU case-study set of §7.3 (Twitter workload).
    pub fn case_study() -> Self {
        KnobSet::new(&[
            "innodb_thread_concurrency",
            "innodb_spin_wait_delay",
            "innodb_lru_scan_depth",
        ])
    }

    /// The Figure-1 motivation pair: `innodb_sync_spin_loops` × `table_open_cache`.
    pub fn figure1() -> Self {
        KnobSet::new(&["innodb_sync_spin_loops", "table_open_cache"])
    }

    /// Dimensionality of the search space.
    pub fn dim(&self) -> usize {
        self.indices.len()
    }

    /// Knob names in order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Knob definitions in order.
    pub fn defs(&self) -> Vec<&'static KnobDef> {
        let reg = KnobRegistry::mysql();
        self.indices.iter().map(|&i| reg.knob(i)).collect()
    }

    /// Encodes the knob-set slice of a configuration to `[0,1]^m`.
    pub fn normalize(&self, config: &Configuration) -> Vec<f64> {
        let reg = KnobRegistry::mysql();
        self.indices.iter().map(|&i| reg.knob(i).normalize(config.values[i])).collect()
    }

    /// Decodes a `[0,1]^m` point into a full configuration, leaving knobs
    /// outside this set at the values of `base`.
    pub fn to_configuration(&self, point: &[f64], base: &Configuration) -> Configuration {
        assert_eq!(point.len(), self.dim(), "point dimension mismatch");
        let reg = KnobRegistry::mysql();
        let mut config = base.clone();
        for (pos, &i) in self.indices.iter().enumerate() {
            config.values[i] = reg.knob(i).denormalize(point[pos]);
        }
        config
    }

    /// The default configuration's normalized coordinates in this set.
    pub fn default_point(&self) -> Vec<f64> {
        self.normalize(&Configuration::dba_default())
    }
}

/// The MySQL/InnoDB knob catalogue (38 knobs).
fn mysql_knob_defs() -> Vec<KnobDef> {
    use KnobKind::*;
    let k = |name, min: f64, max: f64, default: f64, kind, log_scale, description| KnobDef {
        name,
        min,
        max,
        default,
        kind,
        log_scale,
        description,
    };
    vec![
        // --- concurrency / CPU ------------------------------------------
        k("innodb_thread_concurrency", 0.0, 128.0, 0.0, Integer, false,
          "InnoDB admission limit on concurrently running threads (0 = unlimited)"),
        k("innodb_spin_wait_delay", 0.0, 128.0, 6.0, Integer, false,
          "maximum delay between spinlock polls; busy polling burns CPU"),
        k("innodb_sync_spin_loops", 0.0, 100.0, 30.0, Integer, false,
          "times a thread spins on a mutex before suspending"),
        k("table_open_cache", 1.0, 10240.0, 2000.0, Integer, false,
          "number of cached open table handles"),
        k("innodb_lru_scan_depth", 100.0, 8192.0, 1024.0, Integer, true,
          "how far down the LRU list each page-cleaner scan goes"),
        k("innodb_page_cleaners", 1.0, 8.0, 4.0, Integer, false,
          "number of background page-cleaner threads"),
        k("innodb_purge_threads", 1.0, 8.0, 4.0, Integer, false,
          "number of background purge threads"),
        k("innodb_read_io_threads", 1.0, 16.0, 4.0, Integer, false,
          "background read I/O threads"),
        k("innodb_write_io_threads", 1.0, 16.0, 4.0, Integer, false,
          "background write I/O threads"),
        k("innodb_adaptive_hash_index", 0.0, 1.0, 1.0, Boolean, false,
          "adaptive hash index: speeds hot reads, costs maintenance + mutexes"),
        k("innodb_buffer_pool_instances", 1.0, 16.0, 8.0, Integer, false,
          "buffer pool partitions; too few contend under high concurrency"),
        k("thread_cache_size", 0.0, 512.0, 32.0, Integer, false,
          "server threads kept cached for connection reuse"),
        k("innodb_concurrency_tickets", 1.0, 10000.0, 5000.0, Integer, true,
          "tickets a thread gets per admission before re-queuing"),
        k("innodb_sync_array_size", 1.0, 64.0, 1.0, Integer, false,
          "sync wait array partitions"),
        // --- I/O ----------------------------------------------------------
        k("innodb_io_capacity", 100.0, 20000.0, 2000.0, Integer, true,
          "background flush IOPS budget; overshoot wastes I/O, undershoot stalls"),
        k("innodb_io_capacity_max", 200.0, 40000.0, 4000.0, Integer, true,
          "emergency flush IOPS ceiling"),
        k("innodb_flush_log_at_trx_commit", 0.0, 3.0, 1.0, Enum(3), false,
          "redo durability: 0 = lazy, 1 = fsync/commit, 2 = write/commit"),
        k("sync_binlog", 0.0, 1000.0, 1.0, Integer, false,
          "binlog fsync period in commits (0 = OS-buffered)"),
        k("innodb_flush_neighbors", 0.0, 3.0, 1.0, Enum(3), false,
          "flush neighbor pages in the same extent (HDD-era write amplification)"),
        k("innodb_log_file_size_mb", 64.0, 4096.0, 512.0, Integer, true,
          "redo log file size; small logs force frequent checkpoints"),
        k("innodb_log_buffer_size_mb", 1.0, 256.0, 16.0, Integer, true,
          "redo log buffer size"),
        k("innodb_max_dirty_pages_pct", 5.0, 99.0, 75.0, Float, false,
          "dirty-page percentage that triggers aggressive flushing"),
        k("innodb_max_dirty_pages_pct_lwm", 0.0, 50.0, 10.0, Float, false,
          "dirty-page low-water mark enabling pre-flushing"),
        k("innodb_adaptive_flushing", 0.0, 1.0, 1.0, Boolean, false,
          "adapt flush rate to redo production instead of flushing at capacity"),
        k("innodb_adaptive_flushing_lwm", 0.0, 70.0, 10.0, Float, false,
          "redo-fill percentage that enables adaptive flushing"),
        k("innodb_doublewrite", 0.0, 1.0, 1.0, Boolean, false,
          "doublewrite buffer: torn-page protection at 2x page-write bytes"),
        k("innodb_random_read_ahead", 0.0, 1.0, 0.0, Boolean, false,
          "random read-ahead prefetching (wasteful for OLTP)"),
        k("innodb_read_ahead_threshold", 0.0, 64.0, 56.0, Integer, false,
          "sequential pages before linear read-ahead kicks in (low = eager)"),
        k("innodb_flushing_avg_loops", 1.0, 1000.0, 30.0, Integer, true,
          "iterations flush heuristics average over (low = twitchy)"),
        k("innodb_change_buffering", 0.0, 1.0, 1.0, Boolean, false,
          "buffer secondary-index changes to defer read-modify-write I/O"),
        k("binlog_cache_size_kb", 4.0, 16384.0, 32.0, Integer, true,
          "per-session binlog cache; spills to disk when exceeded"),
        k("innodb_old_blocks_pct", 5.0, 95.0, 37.0, Float, false,
          "LRU old-sublist share (scan resistance)"),
        // --- memory -------------------------------------------------------
        k("innodb_buffer_pool_frac", 0.10, 0.85, 0.50, Float, false,
          "buffer pool size as a fraction of instance RAM"),
        k("sort_buffer_size_kb", 32.0, 65536.0, 2048.0, Integer, true,
          "per-sort buffer; undersizing spills sorts to disk"),
        k("join_buffer_size_kb", 128.0, 65536.0, 4096.0, Integer, true,
          "per-join buffer for un-indexed joins"),
        k("read_buffer_size_kb", 8.0, 16384.0, 1024.0, Integer, true,
          "sequential scan read buffer per thread"),
        k("tmp_table_size_mb", 1.0, 512.0, 256.0, Integer, true,
          "in-memory temp table ceiling; exceeding it goes to disk"),
        k("key_buffer_size_mb", 8.0, 1024.0, 256.0, Integer, true,
          "MyISAM key cache (wasted for InnoDB-only workloads)"),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_38_unique_knobs() {
        let reg = KnobRegistry::mysql();
        assert_eq!(reg.len(), 38);
        assert!(reg.get("innodb_io_capacity").is_some());
        assert!(reg.get("no_such_knob").is_none());
    }

    #[test]
    fn paper_knob_set_sizes() {
        assert_eq!(KnobSet::cpu().dim(), 14);
        assert_eq!(KnobSet::io().dim(), 20);
        assert_eq!(KnobSet::memory().dim(), 6);
        assert_eq!(KnobSet::case_study().dim(), 3);
        assert_eq!(KnobSet::figure1().dim(), 2);
    }

    #[test]
    fn normalize_denormalize_roundtrip_for_floats() {
        let reg = KnobRegistry::mysql();
        let knob = reg.get("innodb_max_dirty_pages_pct").unwrap();
        for v in [5.0, 37.5, 75.0, 99.0] {
            let u = knob.normalize(v);
            assert!((knob.denormalize(u) - v).abs() < 1e-9);
        }
    }

    #[test]
    fn integer_knobs_round() {
        let reg = KnobRegistry::mysql();
        let knob = reg.get("innodb_page_cleaners").unwrap();
        let v = knob.denormalize(0.5);
        assert_eq!(v, v.round());
        assert!(v >= knob.min && v <= knob.max);
    }

    #[test]
    fn boolean_knobs_threshold() {
        let reg = KnobRegistry::mysql();
        let knob = reg.get("innodb_doublewrite").unwrap();
        assert_eq!(knob.denormalize(0.2), 0.0);
        assert_eq!(knob.denormalize(0.8), 1.0);
    }

    #[test]
    fn enum_knobs_bin() {
        let reg = KnobRegistry::mysql();
        let knob = reg.get("innodb_flush_log_at_trx_commit").unwrap();
        assert_eq!(knob.denormalize(0.1), 0.0);
        assert_eq!(knob.denormalize(0.5), 1.0);
        assert_eq!(knob.denormalize(0.95), 2.0);
    }

    #[test]
    fn log_scale_knobs_are_monotone() {
        let reg = KnobRegistry::mysql();
        let knob = reg.get("innodb_io_capacity").unwrap();
        assert!(knob.log_scale);
        let lo = knob.denormalize(0.1);
        let mid = knob.denormalize(0.5);
        let hi = knob.denormalize(0.9);
        assert!(lo < mid && mid < hi);
        assert!((knob.normalize(knob.denormalize(0.37)) - 0.37).abs() < 0.02);
    }

    #[test]
    fn configuration_get_set() {
        let mut c = Configuration::dba_default();
        assert_eq!(c.get("innodb_thread_concurrency"), 0.0);
        c.set("innodb_thread_concurrency", 13.0);
        assert_eq!(c.get("innodb_thread_concurrency"), 13.0);
        // Clamped to range.
        c.set("innodb_thread_concurrency", 1e9);
        assert_eq!(c.get("innodb_thread_concurrency"), 128.0);
    }

    #[test]
    fn knobset_roundtrip_preserves_outside_knobs() {
        let set = KnobSet::case_study();
        let base = Configuration::dba_default().with("innodb_io_capacity", 5000.0);
        let point = vec![0.25, 0.5, 0.75];
        let config = set.to_configuration(&point, &base);
        assert_eq!(config.get("innodb_io_capacity"), 5000.0);
        let back = set.normalize(&config);
        for (a, b) in back.iter().zip(&point) {
            assert!((a - b).abs() < 0.05, "{a} vs {b}");
        }
    }

    #[test]
    fn default_point_matches_defaults() {
        let set = KnobSet::cpu();
        let point = set.default_point();
        let config = set.to_configuration(&point, &Configuration::dba_default());
        for name in set.names() {
            let def = KnobRegistry::mysql().get(name).unwrap();
            assert!(
                (config.get(name) - def.default).abs() < 1e-6,
                "{name}: {} vs {}",
                config.get(name),
                def.default
            );
        }
    }
}
