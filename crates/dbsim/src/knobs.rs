//! Configuration-knob registry, typed knob definitions, and the normalized
//! `[0,1]^m` encoding the tuners operate in.
//!
//! The paper tunes pre-selected important knobs: **14 for CPU, 20 for I/O and
//! 6 for memory** (§7 "Setting"). This module defines a registry of real
//! MySQL/InnoDB knobs with realistic ranges and deliberately DBA-ish (i.e.
//! safe but resource-wasteful) defaults, and the three pre-selected
//! [`KnobSet`]s with exactly those sizes.

use std::collections::HashMap;
use std::sync::OnceLock;

/// Value domain of a knob.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KnobKind {
    /// Integer-valued within `[min, max]`.
    Integer,
    /// Real-valued within `[min, max]`.
    Float,
    /// `0` or `1`.
    Boolean,
    /// One of `n` ordered levels `0..n` (e.g. `innodb_flush_log_at_trx_commit`).
    Enum(u32),
}

/// Definition of a single tunable knob.
#[derive(Debug, Clone)]
pub struct KnobDef {
    /// MySQL-style knob name (units folded into the name where relevant).
    pub name: &'static str,
    /// Lower bound (natural units).
    pub min: f64,
    /// Upper bound (natural units).
    pub max: f64,
    /// DBA default (natural units).
    pub default: f64,
    /// Value domain.
    pub kind: KnobKind,
    /// Whether the `[0,1]` encoding is logarithmic. Requires `min > 0`.
    pub log_scale: bool,
    /// Sentinel value with special semantics (e.g. `0` = "unlimited" for
    /// `innodb_thread_concurrency`, `0` = "OS-buffered" for `sync_binlog`).
    /// Hybrid-knob transforms (see `core::space`) bias-sample this value so
    /// the discontinuous mode stays reachable from a continuous search space.
    pub special: Option<f64>,
    /// One-line description of the knob's role.
    pub description: &'static str,
}

impl KnobDef {
    /// Maps a natural-unit value to `[0, 1]`.
    pub fn normalize(&self, value: f64) -> f64 {
        if let KnobKind::Enum(n) = self.kind {
            // Use bin centers so normalize/denormalize round-trips.
            return ((value + 0.5) / n as f64).clamp(0.0, 1.0);
        }
        let v = value.clamp(self.min, self.max);
        let u = if self.log_scale {
            (v.ln() - self.min.ln()) / (self.max.ln() - self.min.ln())
        } else {
            (v - self.min) / (self.max - self.min)
        };
        u.clamp(0.0, 1.0)
    }

    /// Maps a `[0, 1]` value back to natural units, respecting the domain
    /// (integers round, booleans threshold, enums bin).
    pub fn denormalize(&self, unit: f64) -> f64 {
        let u = unit.clamp(0.0, 1.0);
        let raw = if self.log_scale {
            (self.min.ln() + u * (self.max.ln() - self.min.ln())).exp()
        } else {
            self.min + u * (self.max - self.min)
        };
        match self.kind {
            // The log-scale round trip `exp(ln(max))` can overshoot `max` by
            // an ulp; clamp so denormalized floats always sit in `[min, max]`.
            KnobKind::Float => raw.clamp(self.min, self.max),
            KnobKind::Integer => raw.round().clamp(self.min, self.max),
            KnobKind::Boolean => {
                if u >= 0.5 {
                    1.0
                } else {
                    0.0
                }
            }
            KnobKind::Enum(n) => {
                // Partition [0,1] into n bins and round to the nearest bin,
                // as the paper describes for discrete knobs (§3).
                ((u * n as f64).floor().min(n as f64 - 1.0)).max(0.0)
            }
        }
    }
}

/// The full knob registry: an ordered list of [`KnobDef`]s with name lookup.
#[derive(Debug)]
pub struct KnobRegistry {
    knobs: Vec<KnobDef>,
    index: HashMap<&'static str, usize>,
}

impl KnobRegistry {
    fn from_defs(knobs: Vec<KnobDef>) -> Self {
        let mut index = HashMap::with_capacity(knobs.len());
        for (i, k) in knobs.iter().enumerate() {
            let prev = index.insert(k.name, i);
            assert!(prev.is_none(), "duplicate knob {}", k.name);
        }
        KnobRegistry { knobs, index }
    }

    /// The global MySQL/InnoDB knob registry used throughout the workspace.
    pub fn mysql() -> &'static KnobRegistry {
        static REGISTRY: OnceLock<KnobRegistry> = OnceLock::new();
        REGISTRY.get_or_init(|| KnobRegistry::from_defs(mysql_knob_defs()))
    }

    /// Number of knobs.
    pub fn len(&self) -> usize {
        self.knobs.len()
    }

    /// Whether the registry is empty (never true for [`KnobRegistry::mysql`]).
    pub fn is_empty(&self) -> bool {
        self.knobs.is_empty()
    }

    /// Knob definition by position.
    pub fn knob(&self, idx: usize) -> &KnobDef {
        &self.knobs[idx]
    }

    /// Knob definition by name.
    pub fn get(&self, name: &str) -> Option<&KnobDef> {
        self.index.get(name).map(|&i| &self.knobs[i])
    }

    /// Position of a knob by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.index.get(name).copied()
    }

    /// Iterates over all knob definitions in registry order.
    pub fn iter(&self) -> impl Iterator<Item = &KnobDef> {
        self.knobs.iter()
    }

    /// The DBA-default configuration.
    pub fn default_configuration(&self) -> Configuration {
        Configuration { values: self.knobs.iter().map(|k| k.default).collect() }
    }
}

/// A full knob assignment in natural units, aligned with
/// [`KnobRegistry::mysql`] order.
#[derive(Debug, Clone, PartialEq)]
pub struct Configuration {
    values: Vec<f64>,
}

impl Configuration {
    /// The DBA-default configuration.
    pub fn dba_default() -> Self {
        KnobRegistry::mysql().default_configuration()
    }

    /// Value of a knob by name. Panics on unknown names (registry is static,
    /// so an unknown name is a programming error, not an input error).
    pub fn get(&self, name: &str) -> f64 {
        let idx = KnobRegistry::mysql()
            .index_of(name)
            .unwrap_or_else(|| panic!("unknown knob {name}"));
        self.values[idx]
    }

    /// Sets a knob by name (clamped to the knob's range).
    pub fn set(&mut self, name: &str, value: f64) {
        let reg = KnobRegistry::mysql();
        let idx = reg.index_of(name).unwrap_or_else(|| panic!("unknown knob {name}"));
        self.values[idx] = value.clamp(reg.knob(idx).min, reg.knob(idx).max);
    }

    /// Builder-style [`Configuration::set`].
    pub fn with(mut self, name: &str, value: f64) -> Self {
        self.set(name, value);
        self
    }

    /// Raw values in registry order.
    pub fn values(&self) -> &[f64] {
        &self.values
    }
}

impl Default for Configuration {
    fn default() -> Self {
        Configuration::dba_default()
    }
}

/// An ordered subset of knobs forming a tuning search space `[0,1]^m`.
#[derive(Debug, Clone, PartialEq)]
pub struct KnobSet {
    names: Vec<String>,
    indices: Vec<usize>,
}

impl KnobSet {
    /// Builds a knob set from names. Panics on unknown names.
    pub fn new(names: &[&str]) -> Self {
        let reg = KnobRegistry::mysql();
        let indices = names
            .iter()
            .map(|n| reg.index_of(n).unwrap_or_else(|| panic!("unknown knob {n}")))
            .collect();
        KnobSet { names: names.iter().map(|n| n.to_string()).collect(), indices }
    }

    /// The paper's 14-knob CPU tuning set.
    pub fn cpu() -> Self {
        KnobSet::new(&[
            "innodb_thread_concurrency",
            "innodb_spin_wait_delay",
            "innodb_sync_spin_loops",
            "table_open_cache",
            "innodb_lru_scan_depth",
            "innodb_page_cleaners",
            "innodb_purge_threads",
            "innodb_read_io_threads",
            "innodb_write_io_threads",
            "innodb_adaptive_hash_index",
            "innodb_buffer_pool_instances",
            "thread_cache_size",
            "innodb_concurrency_tickets",
            "innodb_sync_array_size",
        ])
    }

    /// The paper's 20-knob I/O tuning set.
    pub fn io() -> Self {
        KnobSet::new(&[
            "innodb_io_capacity",
            "innodb_io_capacity_max",
            "innodb_flush_log_at_trx_commit",
            "sync_binlog",
            "innodb_flush_neighbors",
            "innodb_log_file_size_mb",
            "innodb_log_buffer_size_mb",
            "innodb_max_dirty_pages_pct",
            "innodb_max_dirty_pages_pct_lwm",
            "innodb_adaptive_flushing",
            "innodb_adaptive_flushing_lwm",
            "innodb_doublewrite",
            "innodb_random_read_ahead",
            "innodb_read_ahead_threshold",
            "innodb_flushing_avg_loops",
            "innodb_change_buffering",
            "binlog_cache_size_kb",
            "innodb_old_blocks_pct",
            "innodb_lru_scan_depth",
            "innodb_page_cleaners",
        ])
    }

    /// The paper's 6-knob memory tuning set (buffer pool size is a knob here).
    pub fn memory() -> Self {
        KnobSet::new(&[
            "innodb_buffer_pool_frac",
            "sort_buffer_size_kb",
            "join_buffer_size_kb",
            "read_buffer_size_kb",
            "tmp_table_size_mb",
            "key_buffer_size_mb",
        ])
    }

    /// The 3-knob CPU case-study set of §7.3 (Twitter workload).
    pub fn case_study() -> Self {
        KnobSet::new(&[
            "innodb_thread_concurrency",
            "innodb_spin_wait_delay",
            "innodb_lru_scan_depth",
        ])
    }

    /// The Figure-1 motivation pair: `innodb_sync_spin_loops` × `table_open_cache`.
    pub fn figure1() -> Self {
        KnobSet::new(&["innodb_sync_spin_loops", "table_open_cache"])
    }

    /// Every knob in the 200-knob registry: the native space a search-space
    /// transformation (projection / quantization / hybrid handling) operates
    /// over. Tuning this directly with a dense GP is the anti-pattern the
    /// `core::space` layer exists to avoid.
    pub fn extended() -> Self {
        let reg = KnobRegistry::mysql();
        KnobSet {
            names: reg.iter().map(|d| d.name.to_string()).collect(),
            indices: (0..reg.len()).collect(),
        }
    }

    /// A 40-knob "expert pre-selection": the paper's 38 analytically modelled
    /// knobs plus the two heaviest micro-impact knobs from the extended
    /// catalogue. This is the full-space reference arm that projection
    /// benchmarks compare against.
    pub fn expert() -> Self {
        let reg = KnobRegistry::mysql();
        let mut names: Vec<String> = reg.iter().take(38).map(|d| d.name.to_string()).collect();
        names.push("innodb_purge_batch_size".to_string());
        names.push("innodb_old_blocks_time_ms".to_string());
        let indices = names
            .iter()
            .map(|n| reg.index_of(n).unwrap_or_else(|| panic!("unknown knob {n}")))
            .collect();
        KnobSet { names, indices }
    }

    /// Dimensionality of the search space.
    pub fn dim(&self) -> usize {
        self.indices.len()
    }

    /// Knob names in order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Knob definitions in order.
    pub fn defs(&self) -> Vec<&'static KnobDef> {
        let reg = KnobRegistry::mysql();
        self.indices.iter().map(|&i| reg.knob(i)).collect()
    }

    /// Encodes the knob-set slice of a configuration to `[0,1]^m`.
    pub fn normalize(&self, config: &Configuration) -> Vec<f64> {
        let reg = KnobRegistry::mysql();
        self.indices.iter().map(|&i| reg.knob(i).normalize(config.values[i])).collect()
    }

    /// Decodes a `[0,1]^m` point into a full configuration, leaving knobs
    /// outside this set at the values of `base`.
    ///
    /// This is the single seam where search-space coordinates become knob
    /// values, so it defends itself: coordinates outside `[0,1]` (points
    /// lifted from a projected subspace can overshoot the unit cube) are
    /// clamped, and a non-finite coordinate falls back to the knob's default
    /// rather than writing NaN into the configuration.
    pub fn to_configuration(&self, point: &[f64], base: &Configuration) -> Configuration {
        assert_eq!(point.len(), self.dim(), "point dimension mismatch");
        let reg = KnobRegistry::mysql();
        let mut config = base.clone();
        for (pos, &i) in self.indices.iter().enumerate() {
            let def = reg.knob(i);
            config.values[i] = if point[pos].is_finite() {
                def.denormalize(point[pos].clamp(0.0, 1.0))
            } else {
                def.default
            };
        }
        config
    }

    /// The default configuration's normalized coordinates in this set.
    pub fn default_point(&self) -> Vec<f64> {
        self.normalize(&Configuration::dba_default())
    }
}

/// The MySQL/InnoDB knob catalogue (200 knobs).
///
/// The first 38 are the paper's pre-selected high-impact knobs with full
/// analytic treatment in `model.rs`. The rest — [`extended_knob_defs`] — are
/// deliberately low-impact (a handful contribute a few percent through
/// [`micro_misconfig_score`]; most are inert for OLTP, as in a real MySQL or
/// PostgreSQL), so a search-space transformation layer has a realistic
/// 200-knob native space to prove itself on.
fn mysql_knob_defs() -> Vec<KnobDef> {
    use KnobKind::*;
    let k = |name, min: f64, max: f64, default: f64, kind, log_scale, description| KnobDef {
        name,
        min,
        max,
        default,
        kind,
        log_scale,
        special: None,
        description,
    };
    let mut defs = vec![
        // --- concurrency / CPU ------------------------------------------
        KnobDef {
            special: Some(0.0),
            ..k("innodb_thread_concurrency", 0.0, 128.0, 0.0, Integer, false,
                "InnoDB admission limit on concurrently running threads (0 = unlimited)")
        },
        k("innodb_spin_wait_delay", 0.0, 128.0, 6.0, Integer, false,
          "maximum delay between spinlock polls; busy polling burns CPU"),
        k("innodb_sync_spin_loops", 0.0, 100.0, 30.0, Integer, false,
          "times a thread spins on a mutex before suspending"),
        k("table_open_cache", 1.0, 10240.0, 2000.0, Integer, false,
          "number of cached open table handles"),
        k("innodb_lru_scan_depth", 100.0, 8192.0, 1024.0, Integer, true,
          "how far down the LRU list each page-cleaner scan goes"),
        k("innodb_page_cleaners", 1.0, 8.0, 4.0, Integer, false,
          "number of background page-cleaner threads"),
        k("innodb_purge_threads", 1.0, 8.0, 4.0, Integer, false,
          "number of background purge threads"),
        k("innodb_read_io_threads", 1.0, 16.0, 4.0, Integer, false,
          "background read I/O threads"),
        k("innodb_write_io_threads", 1.0, 16.0, 4.0, Integer, false,
          "background write I/O threads"),
        k("innodb_adaptive_hash_index", 0.0, 1.0, 1.0, Boolean, false,
          "adaptive hash index: speeds hot reads, costs maintenance + mutexes"),
        k("innodb_buffer_pool_instances", 1.0, 16.0, 8.0, Integer, false,
          "buffer pool partitions; too few contend under high concurrency"),
        k("thread_cache_size", 0.0, 512.0, 32.0, Integer, false,
          "server threads kept cached for connection reuse"),
        k("innodb_concurrency_tickets", 1.0, 10000.0, 5000.0, Integer, true,
          "tickets a thread gets per admission before re-queuing"),
        k("innodb_sync_array_size", 1.0, 64.0, 1.0, Integer, false,
          "sync wait array partitions"),
        // --- I/O ----------------------------------------------------------
        k("innodb_io_capacity", 100.0, 20000.0, 2000.0, Integer, true,
          "background flush IOPS budget; overshoot wastes I/O, undershoot stalls"),
        k("innodb_io_capacity_max", 200.0, 40000.0, 4000.0, Integer, true,
          "emergency flush IOPS ceiling"),
        k("innodb_flush_log_at_trx_commit", 0.0, 3.0, 1.0, Enum(3), false,
          "redo durability: 0 = lazy, 1 = fsync/commit, 2 = write/commit"),
        KnobDef {
            special: Some(0.0),
            ..k("sync_binlog", 0.0, 1000.0, 1.0, Integer, false,
                "binlog fsync period in commits (0 = OS-buffered)")
        },
        k("innodb_flush_neighbors", 0.0, 3.0, 1.0, Enum(3), false,
          "flush neighbor pages in the same extent (HDD-era write amplification)"),
        k("innodb_log_file_size_mb", 64.0, 4096.0, 512.0, Integer, true,
          "redo log file size; small logs force frequent checkpoints"),
        k("innodb_log_buffer_size_mb", 1.0, 256.0, 16.0, Integer, true,
          "redo log buffer size"),
        k("innodb_max_dirty_pages_pct", 5.0, 99.0, 75.0, Float, false,
          "dirty-page percentage that triggers aggressive flushing"),
        k("innodb_max_dirty_pages_pct_lwm", 0.0, 50.0, 10.0, Float, false,
          "dirty-page low-water mark enabling pre-flushing"),
        k("innodb_adaptive_flushing", 0.0, 1.0, 1.0, Boolean, false,
          "adapt flush rate to redo production instead of flushing at capacity"),
        k("innodb_adaptive_flushing_lwm", 0.0, 70.0, 10.0, Float, false,
          "redo-fill percentage that enables adaptive flushing"),
        k("innodb_doublewrite", 0.0, 1.0, 1.0, Boolean, false,
          "doublewrite buffer: torn-page protection at 2x page-write bytes"),
        k("innodb_random_read_ahead", 0.0, 1.0, 0.0, Boolean, false,
          "random read-ahead prefetching (wasteful for OLTP)"),
        k("innodb_read_ahead_threshold", 0.0, 64.0, 56.0, Integer, false,
          "sequential pages before linear read-ahead kicks in (low = eager)"),
        k("innodb_flushing_avg_loops", 1.0, 1000.0, 30.0, Integer, true,
          "iterations flush heuristics average over (low = twitchy)"),
        k("innodb_change_buffering", 0.0, 1.0, 1.0, Boolean, false,
          "buffer secondary-index changes to defer read-modify-write I/O"),
        k("binlog_cache_size_kb", 4.0, 16384.0, 32.0, Integer, true,
          "per-session binlog cache; spills to disk when exceeded"),
        k("innodb_old_blocks_pct", 5.0, 95.0, 37.0, Float, false,
          "LRU old-sublist share (scan resistance)"),
        // --- memory -------------------------------------------------------
        k("innodb_buffer_pool_frac", 0.10, 0.85, 0.50, Float, false,
          "buffer pool size as a fraction of instance RAM"),
        k("sort_buffer_size_kb", 32.0, 65536.0, 2048.0, Integer, true,
          "per-sort buffer; undersizing spills sorts to disk"),
        k("join_buffer_size_kb", 128.0, 65536.0, 4096.0, Integer, true,
          "per-join buffer for un-indexed joins"),
        k("read_buffer_size_kb", 8.0, 16384.0, 1024.0, Integer, true,
          "sequential scan read buffer per thread"),
        k("tmp_table_size_mb", 1.0, 512.0, 256.0, Integer, true,
          "in-memory temp table ceiling; exceeding it goes to disk"),
        k("key_buffer_size_mb", 8.0, 1024.0, 256.0, Integer, true,
          "MyISAM key cache (wasted for InnoDB-only workloads)"),
    ];
    defs.extend(extended_knob_defs());
    defs
}

/// The long tail of the catalogue: 162 further MySQL-style knobs with
/// realistic ranges and defaults. A designated two dozen
/// ([`MICRO_IMPACT`]) contribute a small misconfiguration penalty to the
/// simulator; the rest are inert for the simulated OLTP workloads — exactly
/// the "hundreds of knobs, few of which matter" regime that motivates
/// low-dimensional search-space projections.
fn extended_knob_defs() -> Vec<KnobDef> {
    use KnobKind::*;
    type Row = (&'static str, f64, f64, f64, KnobKind, bool, Option<f64>, &'static str);
    const ROWS: &[Row] = &[
        // --- connection / network ---------------------------------------
        ("max_connections", 10.0, 10000.0, 151.0, Integer, true, None, "client connection ceiling"),
        ("back_log", 1.0, 65535.0, 80.0, Integer, true, None, "pending-connection listen queue"),
        ("max_connect_errors", 1.0, 1e6, 100.0, Integer, true, None, "host block threshold on aborted connects"),
        ("connect_timeout_s", 2.0, 300.0, 10.0, Integer, false, None, "handshake timeout"),
        ("wait_timeout_s", 1.0, 86400.0, 28800.0, Integer, true, None, "idle non-interactive session timeout"),
        ("interactive_timeout_s", 1.0, 86400.0, 28800.0, Integer, true, None, "idle interactive session timeout"),
        ("net_read_timeout_s", 1.0, 300.0, 30.0, Integer, false, None, "per-read network timeout"),
        ("net_write_timeout_s", 1.0, 300.0, 60.0, Integer, false, None, "per-write network timeout"),
        ("net_retry_count", 1.0, 100.0, 10.0, Integer, false, None, "interrupted-read retry budget"),
        ("net_buffer_length_kb", 1.0, 1024.0, 16.0, Integer, true, None, "initial connection buffer"),
        ("max_allowed_packet_mb", 1.0, 1024.0, 64.0, Integer, true, None, "largest client packet"),
        ("thread_stack_kb", 128.0, 2048.0, 256.0, Integer, false, None, "per-thread stack size"),
        ("max_user_connections", 0.0, 10000.0, 0.0, Integer, false, Some(0.0), "per-user connection cap (0 = unlimited)"),
        ("host_cache_size", 0.0, 65536.0, 279.0, Integer, false, None, "host name cache entries"),
        ("max_prepared_stmt_count", 0.0, 1048576.0, 16382.0, Integer, false, None, "server-wide prepared statement cap"),
        ("max_error_count", 0.0, 65535.0, 1024.0, Integer, false, None, "diagnostics area message cap"),
        // --- table / file caches ----------------------------------------
        ("table_open_cache_instances", 1.0, 64.0, 16.0, Integer, false, None, "table cache partitions"),
        ("table_definition_cache", 400.0, 524288.0, 2000.0, Integer, true, None, "cached table definitions"),
        ("metadata_locks_cache_size", 256.0, 1048576.0, 1024.0, Integer, true, None, "MDL lock object cache"),
        ("open_files_limit", 1000.0, 1048576.0, 5000.0, Integer, true, None, "file descriptor budget"),
        ("innodb_open_files", 10.0, 65536.0, 4000.0, Integer, true, None, "InnoDB open tablespace cap"),
        ("innodb_file_per_table", 0.0, 1.0, 1.0, Boolean, false, None, "one tablespace per table"),
        ("innodb_autoextend_increment_mb", 1.0, 1000.0, 64.0, Integer, false, None, "tablespace growth step"),
        ("flush_time_s", 0.0, 3600.0, 0.0, Integer, false, Some(0.0), "periodic table flush (0 = off)"),
        // --- optimizer ---------------------------------------------------
        ("optimizer_search_depth", 0.0, 62.0, 62.0, Integer, false, Some(0.0), "join-order search depth (0 = auto)"),
        ("optimizer_prune_level", 0.0, 1.0, 1.0, Boolean, false, None, "heuristic join-plan pruning"),
        ("eq_range_index_dive_limit", 0.0, 10000.0, 200.0, Integer, false, None, "equality ranges before index dives stop"),
        ("range_optimizer_max_mem_size_mb", 1.0, 1024.0, 8.0, Integer, true, None, "range optimizer memory cap"),
        ("max_seeks_for_key", 1.0, 1e9, 1e9, Integer, true, None, "assumed max seeks for key lookups"),
        ("max_length_for_sort_data", 4.0, 8192.0, 4096.0, Integer, true, None, "row size bound for sort-by-row"),
        ("max_sort_length", 4.0, 8192.0, 1024.0, Integer, true, None, "bytes compared when sorting blobs"),
        ("group_concat_max_len_kb", 1.0, 1024.0, 1.0, Integer, true, None, "GROUP_CONCAT result cap"),
        ("range_alloc_block_size_kb", 4.0, 64.0, 4.0, Integer, false, None, "range optimization allocation block"),
        ("query_alloc_block_size_kb", 1.0, 64.0, 8.0, Integer, false, None, "statement parse/execute allocation block"),
        ("query_prealloc_size_kb", 8.0, 1024.0, 8.0, Integer, true, None, "persistent statement arena"),
        ("transaction_alloc_block_size_kb", 1.0, 128.0, 8.0, Integer, false, None, "transaction allocation block"),
        ("transaction_prealloc_size_kb", 1.0, 128.0, 4.0, Integer, false, None, "persistent transaction arena"),
        ("div_precision_increment", 0.0, 30.0, 4.0, Integer, false, None, "division result scale digits"),
        // --- per-session buffers / MyISAM --------------------------------
        ("preload_buffer_size_kb", 1.0, 1024.0, 32.0, Integer, true, None, "index preload buffer"),
        ("read_rnd_buffer_size_kb", 1.0, 16384.0, 256.0, Integer, true, None, "sorted-read row buffer"),
        ("bulk_insert_buffer_size_mb", 0.0, 64.0, 8.0, Integer, false, None, "bulk insert tree cache"),
        ("myisam_sort_buffer_size_mb", 4.0, 512.0, 8.0, Integer, true, None, "MyISAM index repair sort buffer"),
        ("max_heap_table_size_mb", 1.0, 1024.0, 16.0, Integer, true, None, "MEMORY table size cap"),
        ("big_tables", 0.0, 1.0, 0.0, Boolean, false, None, "force disk temp tables"),
        ("myisam_data_pointer_size", 2.0, 7.0, 6.0, Integer, false, None, "MyISAM row pointer bytes"),
        ("myisam_max_sort_file_size_gb", 0.0, 100.0, 9.0, Integer, false, None, "repair-by-sort temp file cap"),
        ("myisam_repair_threads", 1.0, 8.0, 1.0, Integer, false, None, "parallel index repair threads"),
        ("myisam_use_mmap", 0.0, 1.0, 0.0, Boolean, false, None, "mmap MyISAM data files"),
        // --- key cache ---------------------------------------------------
        ("key_cache_block_size_kb", 1.0, 16.0, 1.0, Integer, false, None, "key cache block size"),
        ("key_cache_division_limit_pct", 1.0, 100.0, 100.0, Integer, false, None, "warm sublist share"),
        ("key_cache_age_threshold", 100.0, 10000.0, 300.0, Integer, true, None, "hot sublist demotion age"),
        ("keep_files_on_create", 0.0, 1.0, 0.0, Boolean, false, None, "never overwrite existing files"),
        // --- binlog / replication ---------------------------------------
        ("binlog_stmt_cache_size_kb", 4.0, 1024.0, 32.0, Integer, true, None, "non-transactional binlog cache"),
        ("max_binlog_size_mb", 4.0, 1024.0, 1024.0, Integer, true, None, "binlog rotation size"),
        ("max_binlog_cache_size_mb", 4.0, 4096.0, 4096.0, Integer, true, None, "transaction binlog cache cap"),
        ("binlog_group_commit_sync_delay_us", 0.0, 1e6, 0.0, Integer, false, Some(0.0), "fsync delay to grow commit groups (0 = off)"),
        ("binlog_group_commit_sync_no_delay_count", 0.0, 100000.0, 0.0, Integer, false, None, "early group-commit release count"),
        ("binlog_order_commits", 0.0, 1.0, 1.0, Boolean, false, None, "commit in binlog order"),
        ("binlog_rows_query_log_events", 0.0, 1.0, 0.0, Boolean, false, None, "log original statement with rows"),
        ("binlog_row_image", 0.0, 3.0, 0.0, Enum(3), false, None, "row image: full/minimal/noblob"),
        ("binlog_expire_logs_seconds", 3600.0, 2592000.0, 2592000.0, Integer, true, None, "binlog retention"),
        ("binlog_transaction_dependency_history_size", 1.0, 1e6, 25000.0, Integer, true, None, "writeset dependency history rows"),
        ("replica_parallel_workers", 0.0, 64.0, 4.0, Integer, false, Some(0.0), "parallel applier threads (0 = single)"),
        ("replica_pending_jobs_size_max_mb", 1.0, 1024.0, 16.0, Integer, true, None, "queued applier event memory"),
        ("sync_relay_log", 0.0, 10000.0, 10000.0, Integer, false, Some(0.0), "relay log fsync period (0 = OS)"),
        ("relay_log_space_limit_mb", 0.0, 10240.0, 0.0, Integer, false, Some(0.0), "relay log disk cap (0 = unlimited)"),
        ("rpl_semi_sync_master_timeout_ms", 0.0, 100000.0, 10000.0, Integer, false, None, "semisync ack timeout"),
        ("rpl_semi_sync_master_wait_point", 0.0, 2.0, 0.0, Enum(2), false, None, "ack wait point: after-sync/after-commit"),
        ("gtid_executed_compression_period", 0.0, 100000.0, 1000.0, Integer, false, Some(0.0), "gtid table compression period (0 = off)"),
        ("slave_net_timeout_s", 1.0, 3600.0, 60.0, Integer, true, None, "replica read timeout"),
        // --- InnoDB transactions / locking ------------------------------
        ("innodb_autoinc_lock_mode", 0.0, 3.0, 2.0, Enum(3), false, None, "auto-inc locking: traditional/consecutive/interleaved"),
        ("innodb_table_locks", 0.0, 1.0, 1.0, Boolean, false, None, "honor LOCK TABLES inside InnoDB"),
        ("innodb_rollback_on_timeout", 0.0, 1.0, 0.0, Boolean, false, None, "roll back whole txn on lock timeout"),
        ("innodb_lock_wait_timeout_s", 1.0, 3600.0, 50.0, Integer, true, None, "row lock wait timeout"),
        ("innodb_print_all_deadlocks", 0.0, 1.0, 0.0, Boolean, false, None, "log every deadlock"),
        ("innodb_deadlock_detect", 0.0, 1.0, 1.0, Boolean, false, None, "active deadlock detection"),
        ("innodb_rollback_segments", 1.0, 128.0, 128.0, Integer, false, None, "undo rollback segments"),
        ("innodb_commit_concurrency", 0.0, 1000.0, 0.0, Integer, false, Some(0.0), "concurrent commit threads (0 = unlimited)"),
        ("innodb_api_bk_commit_interval_s", 1.0, 3600.0, 5.0, Integer, true, None, "memcached API background commit period"),
        ("innodb_flush_sync", 0.0, 1.0, 1.0, Boolean, false, None, "ignore io_capacity at checkpoints"),
        ("innodb_fast_shutdown", 0.0, 3.0, 1.0, Enum(3), false, None, "shutdown purge/merge behavior"),
        ("lock_wait_timeout_s", 1.0, 86400.0, 86400.0, Integer, true, None, "metadata lock wait timeout"),
        // --- InnoDB purge / MVCC ----------------------------------------
        ("innodb_purge_batch_size", 1.0, 5000.0, 300.0, Integer, true, None, "undo pages purged per batch"),
        ("innodb_purge_rseg_truncate_frequency", 1.0, 128.0, 128.0, Integer, false, None, "rollback segment truncate cadence"),
        ("innodb_max_purge_lag", 0.0, 1e6, 0.0, Integer, false, Some(0.0), "purge lag DML throttle (0 = off)"),
        ("innodb_max_purge_lag_delay_us", 0.0, 1e6, 0.0, Integer, false, None, "max DML delay under purge lag"),
        ("innodb_thread_sleep_delay_us", 0.0, 1e6, 10000.0, Integer, false, None, "sleep before joining InnoDB queue"),
        ("innodb_adaptive_max_sleep_delay_us", 0.0, 1e6, 150000.0, Integer, false, None, "auto-tuned sleep delay ceiling"),
        // --- InnoDB statistics ------------------------------------------
        ("innodb_stats_persistent", 0.0, 1.0, 1.0, Boolean, false, None, "persistent optimizer statistics"),
        ("innodb_stats_persistent_sample_pages", 1.0, 10000.0, 20.0, Integer, true, None, "index dive pages for persistent stats"),
        ("innodb_stats_transient_sample_pages", 1.0, 100.0, 8.0, Integer, false, None, "index dive pages for transient stats"),
        ("innodb_stats_auto_recalc", 0.0, 1.0, 1.0, Boolean, false, None, "recalc stats after 10% change"),
        ("innodb_stats_on_metadata", 0.0, 1.0, 0.0, Boolean, false, None, "refresh stats on metadata queries"),
        ("innodb_stats_method", 0.0, 3.0, 0.0, Enum(3), false, None, "NULL handling in index stats"),
        // --- InnoDB compression / full-text ------------------------------
        ("innodb_compression_level", 0.0, 9.0, 6.0, Integer, false, None, "zlib level for compressed tables"),
        ("innodb_compression_failure_threshold_pct", 0.0, 100.0, 5.0, Integer, false, None, "failure rate that adds page padding"),
        ("innodb_compression_pad_pct_max", 0.0, 75.0, 50.0, Integer, false, None, "max page padding reserve"),
        ("innodb_ft_cache_size_mb", 2.0, 80.0, 8.0, Integer, false, None, "per-table FTS index cache"),
        ("innodb_ft_total_cache_size_mb", 32.0, 1600.0, 640.0, Integer, false, None, "global FTS index cache"),
        ("innodb_ft_result_cache_limit_mb", 1.0, 4096.0, 2000.0, Integer, true, None, "FTS query result cache cap"),
        ("innodb_ft_min_token_size", 0.0, 16.0, 3.0, Integer, false, None, "shortest indexed FTS token"),
        ("innodb_ft_max_token_size", 10.0, 84.0, 84.0, Integer, false, None, "longest indexed FTS token"),
        ("innodb_ft_sort_pll_degree", 1.0, 16.0, 2.0, Integer, false, None, "parallel FTS index build threads"),
        ("innodb_sort_buffer_size_kb", 64.0, 65536.0, 1024.0, Integer, true, None, "index build sort buffer"),
        // --- InnoDB redo / I/O details ----------------------------------
        ("innodb_log_write_ahead_size_kb", 1.0, 16.0, 8.0, Integer, false, None, "redo write-ahead block size"),
        ("innodb_log_spin_cpu_abs_lwm", 0.0, 100000.0, 80000.0, Integer, false, None, "CPU floor for log-write spinning"),
        ("innodb_log_spin_cpu_pct_hwm", 0.0, 100.0, 50.0, Integer, false, None, "CPU ceiling for log-write spinning"),
        ("innodb_log_wait_for_flush_spin_hwm_us", 0.0, 10000.0, 400.0, Integer, false, None, "max spin while awaiting log flush"),
        ("innodb_checksum_algorithm", 0.0, 3.0, 1.0, Enum(3), false, None, "page checksum: crc32/innodb/none"),
        ("innodb_use_native_aio", 0.0, 1.0, 1.0, Boolean, false, None, "kernel async I/O"),
        ("innodb_idle_flush_pct", 0.0, 100.0, 100.0, Integer, false, None, "flush rate when idle"),
        ("innodb_fsync_threshold_mb", 0.0, 64.0, 0.0, Integer, false, Some(0.0), "bytes between incremental fsyncs (0 = at once)"),
        ("innodb_fill_factor_pct", 10.0, 100.0, 100.0, Integer, false, None, "index build page fill factor"),
        ("innodb_online_alter_log_max_size_mb", 64.0, 2048.0, 128.0, Integer, true, None, "online DDL change log cap"),
        ("innodb_old_blocks_time_ms", 0.0, 10000.0, 1000.0, Integer, false, None, "LRU young-promotion delay"),
        ("innodb_replication_delay_ms", 0.0, 10000.0, 0.0, Integer, false, Some(0.0), "replica DML throttle (0 = off)"),
        // --- buffer pool persistence ------------------------------------
        ("innodb_buffer_pool_dump_pct", 1.0, 100.0, 25.0, Integer, false, None, "hottest pages dumped at shutdown"),
        ("innodb_buffer_pool_dump_at_shutdown", 0.0, 1.0, 1.0, Boolean, false, None, "dump pool contents at shutdown"),
        ("innodb_buffer_pool_load_at_startup", 0.0, 1.0, 1.0, Boolean, false, None, "reload dumped pool at startup"),
        ("innodb_buffer_pool_chunk_size_mb", 1.0, 1024.0, 128.0, Integer, true, None, "pool resize granularity"),
        // --- performance schema / monitoring -----------------------------
        ("performance_schema", 0.0, 1.0, 1.0, Boolean, false, None, "instrumentation engine"),
        ("performance_schema_digests_size", 200.0, 10000.0, 5000.0, Integer, true, None, "statement digest rows"),
        ("performance_schema_max_table_instances", 1000.0, 100000.0, 12500.0, Integer, true, None, "instrumented table objects"),
        ("performance_schema_events_waits_history_size", 5.0, 100.0, 10.0, Integer, false, None, "wait history ring per thread"),
        ("performance_schema_events_statements_history_size", 5.0, 100.0, 10.0, Integer, false, None, "statement history ring per thread"),
        ("performance_schema_setup_actors_size", 100.0, 1000.0, 150.0, Integer, false, None, "actor filter rows"),
        ("max_digest_length", 0.0, 8192.0, 1024.0, Integer, false, None, "statement digest token bytes"),
        ("performance_schema_max_digest_sample_age_s", 0.0, 86400.0, 60.0, Integer, false, None, "query sample refresh age"),
        // --- logging -----------------------------------------------------
        ("slow_query_log", 0.0, 1.0, 0.0, Boolean, false, None, "log slow statements"),
        ("long_query_time_s", 0.0, 100.0, 10.0, Float, false, None, "slow statement threshold"),
        ("log_queries_not_using_indexes", 0.0, 1.0, 0.0, Boolean, false, None, "log index-less queries"),
        ("log_slow_admin_statements", 0.0, 1.0, 0.0, Boolean, false, None, "log slow DDL"),
        ("log_throttle_queries_not_using_indexes", 0.0, 1000.0, 0.0, Integer, false, Some(0.0), "index-less log rate cap (0 = unlimited)"),
        ("general_log", 0.0, 1.0, 0.0, Boolean, false, None, "log every statement"),
        ("log_error_verbosity", 0.0, 3.0, 2.0, Enum(3), false, None, "error log detail level"),
        ("log_bin_trust_function_creators", 0.0, 1.0, 0.0, Boolean, false, None, "allow non-deterministic routine creation"),
        // --- query cache (legacy) ----------------------------------------
        ("query_cache_type", 0.0, 3.0, 0.0, Enum(3), false, None, "query cache mode: off/on/demand"),
        ("query_cache_size_mb", 0.0, 256.0, 0.0, Integer, false, Some(0.0), "query cache memory (0 = off)"),
        ("query_cache_limit_mb", 0.0, 16.0, 1.0, Integer, false, None, "largest cacheable result"),
        ("query_cache_min_res_unit_kb", 1.0, 64.0, 4.0, Integer, false, None, "result block allocation unit"),
        ("query_cache_wlock_invalidate", 0.0, 1.0, 0.0, Boolean, false, None, "invalidate on write locks"),
        // --- thread pool -------------------------------------------------
        ("thread_pool_size", 1.0, 64.0, 16.0, Integer, false, None, "thread pool groups"),
        ("thread_pool_stall_limit_ms", 4.0, 600.0, 6.0, Integer, false, None, "stall detection interval"),
        ("thread_pool_oversubscribe", 1.0, 16.0, 3.0, Integer, false, None, "extra threads per group"),
        ("thread_pool_max_threads", 1.0, 65536.0, 65536.0, Integer, true, None, "pool thread ceiling"),
        ("slow_launch_time_s", 0.0, 300.0, 2.0, Integer, false, None, "slow thread-create threshold"),
        // --- session / SQL toggles ---------------------------------------
        ("session_track_schema", 0.0, 1.0, 1.0, Boolean, false, None, "report schema changes to clients"),
        ("explicit_defaults_for_timestamp", 0.0, 1.0, 1.0, Boolean, false, None, "standard TIMESTAMP defaults"),
        ("end_markers_in_json", 0.0, 1.0, 0.0, Boolean, false, None, "optimizer trace end markers"),
        ("automatic_sp_privileges", 0.0, 1.0, 1.0, Boolean, false, None, "auto-grant routine privileges"),
        ("autocommit", 0.0, 1.0, 1.0, Boolean, false, None, "implicit commit per statement"),
        ("local_infile", 0.0, 1.0, 0.0, Boolean, false, None, "allow client-side LOAD DATA"),
        ("low_priority_updates", 0.0, 1.0, 0.0, Boolean, false, None, "writes yield to reads"),
        ("old_alter_table", 0.0, 1.0, 0.0, Boolean, false, None, "copy-based ALTER TABLE"),
        ("updatable_views_with_limit", 0.0, 1.0, 1.0, Boolean, false, None, "warn on keyless view updates with LIMIT"),
        ("sql_auto_is_null", 0.0, 1.0, 0.0, Boolean, false, None, "IS NULL finds last insert id"),
        ("foreign_key_checks", 0.0, 1.0, 1.0, Boolean, false, None, "enforce foreign keys"),
        ("unique_checks", 0.0, 1.0, 1.0, Boolean, false, None, "enforce unique constraints"),
        ("sql_safe_updates", 0.0, 1.0, 0.0, Boolean, false, None, "reject keyless UPDATE/DELETE"),
        ("show_compatibility_56", 0.0, 1.0, 0.0, Boolean, false, None, "legacy status table compatibility"),
        ("max_sp_recursion_depth", 0.0, 255.0, 0.0, Integer, false, None, "stored procedure recursion cap"),
        ("max_write_lock_count", 1.0, 1e6, 1e6, Integer, true, None, "writes before read locks get through"),
    ];
    ROWS.iter()
        .map(|&(name, min, max, default, kind, log_scale, special, description)| KnobDef {
            name,
            min,
            max,
            default,
            kind,
            log_scale,
            special,
            description,
        })
        .collect()
}

/// The designated minor-impact knobs of the extended catalogue and their
/// penalty weights. Deviations from the default accumulate into
/// [`micro_misconfig_score`] — a few percent of CPU/latency at worst, enough
/// that a 200-knob tuner must *not* wreck the long tail, but far below the
/// first 38 knobs' effects.
const MICRO_IMPACT: &[(&str, f64)] = &[
    ("innodb_purge_batch_size", 0.10),
    ("innodb_thread_sleep_delay_us", 0.08),
    ("innodb_adaptive_max_sleep_delay_us", 0.05),
    ("innodb_checksum_algorithm", 0.06),
    ("innodb_log_write_ahead_size_kb", 0.06),
    ("innodb_use_native_aio", 0.10),
    ("performance_schema", 0.08),
    ("general_log", 0.12),
    ("slow_query_log", 0.05),
    ("query_cache_size_mb", 0.12),
    ("thread_pool_size", 0.08),
    ("table_definition_cache", 0.05),
    ("innodb_open_files", 0.05),
    ("innodb_stats_persistent_sample_pages", 0.05),
    ("max_connections", 0.06),
    ("back_log", 0.04),
    ("binlog_group_commit_sync_delay_us", 0.08),
    ("innodb_old_blocks_time_ms", 0.04),
    ("key_cache_age_threshold", 0.03),
    ("innodb_lock_wait_timeout_s", 0.03),
    ("eq_range_index_dive_limit", 0.04),
    ("optimizer_search_depth", 0.05),
    ("innodb_sort_buffer_size_kb", 0.04),
    ("innodb_compression_level", 0.05),
];

/// Weighted mean squared deviation (in normalized coordinates) of the
/// [`MICRO_IMPACT`] knobs from their defaults, in `[0, 1]`.
///
/// Exactly `0.0` — bit-for-bit — when every micro knob sits at its default,
/// so configurations that never touch the extended catalogue evaluate
/// identically to the pre-extension simulator.
pub fn micro_misconfig_score(config: &Configuration) -> f64 {
    /// `(knob index, weight, normalized default)` per micro knob, plus the
    /// total weight — resolved once against the registry.
    type MicroTerms = (Vec<(usize, f64, f64)>, f64);
    static TERMS: OnceLock<MicroTerms> = OnceLock::new();
    let (terms, total_weight) = TERMS.get_or_init(|| {
        let reg = KnobRegistry::mysql();
        let terms: Vec<(usize, f64, f64)> = MICRO_IMPACT
            .iter()
            .map(|&(name, w)| {
                let idx = reg.index_of(name).unwrap_or_else(|| panic!("unknown micro knob {name}"));
                let def = reg.knob(idx);
                (idx, w, def.normalize(def.default))
            })
            .collect();
        let total: f64 = MICRO_IMPACT.iter().map(|&(_, w)| w).sum();
        (terms, total)
    });
    let reg = KnobRegistry::mysql();
    let mut acc = 0.0;
    for &(idx, w, u_def) in terms {
        let u = reg.knob(idx).normalize(config.values[idx]);
        let d = u - u_def;
        acc += w * d * d;
    }
    acc / total_weight
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_200_unique_knobs() {
        let reg = KnobRegistry::mysql();
        assert_eq!(reg.len(), 200);
        assert!(reg.get("innodb_io_capacity").is_some());
        assert!(reg.get("no_such_knob").is_none());
    }

    #[test]
    fn paper_knob_set_sizes() {
        assert_eq!(KnobSet::cpu().dim(), 14);
        assert_eq!(KnobSet::io().dim(), 20);
        assert_eq!(KnobSet::memory().dim(), 6);
        assert_eq!(KnobSet::case_study().dim(), 3);
        assert_eq!(KnobSet::figure1().dim(), 2);
        assert_eq!(KnobSet::extended().dim(), 200);
        assert_eq!(KnobSet::expert().dim(), 40);
    }

    #[test]
    fn to_configuration_clamps_out_of_range_and_rejects_non_finite() {
        // Projected candidates lifted from a low-dim space can overshoot the
        // unit cube; the seam must clamp rather than write out-of-range knob
        // values, and NaN/inf must fall back to the default instead of
        // poisoning the configuration.
        let set = KnobSet::case_study();
        let base = Configuration::dba_default();
        let config = set.to_configuration(&[-0.3, 1.7, f64::NAN], &base);
        let defs = set.defs();
        assert_eq!(config.get(defs[0].name), defs[0].denormalize(0.0));
        assert_eq!(config.get(defs[1].name), defs[1].denormalize(1.0));
        assert_eq!(config.get(defs[2].name), defs[2].default);
        for &v in config.values() {
            assert!(v.is_finite());
        }
    }

    #[test]
    fn float_denormalize_never_exceeds_range_at_the_boundary() {
        // Log-scale floats used to overshoot `max` by an ulp at u = 1.0
        // (`exp(ln(max))` is not exactly `max` in floating point).
        let reg = KnobRegistry::mysql();
        for def in reg.iter() {
            for u in [0.0, 1.0, 1.0 - 1e-16] {
                let v = def.denormalize(u);
                assert!(
                    v >= def.min && v <= def.max,
                    "{}: denormalize({u}) = {v} outside [{}, {}]",
                    def.name,
                    def.min,
                    def.max
                );
            }
        }
    }

    #[test]
    fn hybrid_knobs_declare_their_sentinels() {
        let reg = KnobRegistry::mysql();
        assert_eq!(reg.get("innodb_thread_concurrency").unwrap().special, Some(0.0));
        assert_eq!(reg.get("sync_binlog").unwrap().special, Some(0.0));
        let n_hybrid = reg.iter().filter(|d| d.special.is_some()).count();
        assert!(n_hybrid >= 10, "expected a meaningful hybrid population, got {n_hybrid}");
        for def in reg.iter() {
            if let Some(s) = def.special {
                assert!(s >= def.min && s <= def.max, "{}: sentinel outside range", def.name);
            }
        }
    }

    #[test]
    fn micro_score_is_exactly_zero_at_defaults_and_positive_off_them() {
        let default = Configuration::dba_default();
        assert_eq!(micro_misconfig_score(&default), 0.0);
        let bad = default.clone().with("general_log", 1.0).with("query_cache_size_mb", 256.0);
        let score = micro_misconfig_score(&bad);
        assert!(score > 0.0 && score <= 1.0, "score = {score}");
        // Expert/paper sets never touch micro knobs except the two expert
        // additions left at default — tuning them cannot add penalty.
        let expert_cfg = KnobSet::expert()
            .to_configuration(&KnobSet::expert().default_point(), &default);
        assert_eq!(micro_misconfig_score(&expert_cfg), 0.0);
    }

    #[test]
    fn normalize_denormalize_roundtrip_for_floats() {
        let reg = KnobRegistry::mysql();
        let knob = reg.get("innodb_max_dirty_pages_pct").unwrap();
        for v in [5.0, 37.5, 75.0, 99.0] {
            let u = knob.normalize(v);
            assert!((knob.denormalize(u) - v).abs() < 1e-9);
        }
    }

    #[test]
    fn integer_knobs_round() {
        let reg = KnobRegistry::mysql();
        let knob = reg.get("innodb_page_cleaners").unwrap();
        let v = knob.denormalize(0.5);
        assert_eq!(v, v.round());
        assert!(v >= knob.min && v <= knob.max);
    }

    #[test]
    fn boolean_knobs_threshold() {
        let reg = KnobRegistry::mysql();
        let knob = reg.get("innodb_doublewrite").unwrap();
        assert_eq!(knob.denormalize(0.2), 0.0);
        assert_eq!(knob.denormalize(0.8), 1.0);
    }

    #[test]
    fn enum_knobs_bin() {
        let reg = KnobRegistry::mysql();
        let knob = reg.get("innodb_flush_log_at_trx_commit").unwrap();
        assert_eq!(knob.denormalize(0.1), 0.0);
        assert_eq!(knob.denormalize(0.5), 1.0);
        assert_eq!(knob.denormalize(0.95), 2.0);
    }

    #[test]
    fn log_scale_knobs_are_monotone() {
        let reg = KnobRegistry::mysql();
        let knob = reg.get("innodb_io_capacity").unwrap();
        assert!(knob.log_scale);
        let lo = knob.denormalize(0.1);
        let mid = knob.denormalize(0.5);
        let hi = knob.denormalize(0.9);
        assert!(lo < mid && mid < hi);
        assert!((knob.normalize(knob.denormalize(0.37)) - 0.37).abs() < 0.02);
    }

    #[test]
    fn configuration_get_set() {
        let mut c = Configuration::dba_default();
        assert_eq!(c.get("innodb_thread_concurrency"), 0.0);
        c.set("innodb_thread_concurrency", 13.0);
        assert_eq!(c.get("innodb_thread_concurrency"), 13.0);
        // Clamped to range.
        c.set("innodb_thread_concurrency", 1e9);
        assert_eq!(c.get("innodb_thread_concurrency"), 128.0);
    }

    #[test]
    fn knobset_roundtrip_preserves_outside_knobs() {
        let set = KnobSet::case_study();
        let base = Configuration::dba_default().with("innodb_io_capacity", 5000.0);
        let point = vec![0.25, 0.5, 0.75];
        let config = set.to_configuration(&point, &base);
        assert_eq!(config.get("innodb_io_capacity"), 5000.0);
        let back = set.normalize(&config);
        for (a, b) in back.iter().zip(&point) {
            assert!((a - b).abs() < 0.05, "{a} vs {b}");
        }
    }

    #[test]
    fn default_point_matches_defaults() {
        let set = KnobSet::cpu();
        let point = set.default_point();
        let config = set.to_configuration(&point, &Configuration::dba_default());
        for name in set.names() {
            let def = KnobRegistry::mysql().get(name).unwrap();
            assert!(
                (config.get(name) - def.default).abs() < 1e-6,
                "{name}: {} vs {}",
                config.get(name),
                def.default
            );
        }
    }
}
