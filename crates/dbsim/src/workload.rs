//! Workload specifications matching Table 2 of the paper, plus the knobs the
//! performance model needs (per-transaction work, contention, skew).

use xrand::RngExt;

/// Workload families used in the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadKind {
    /// SYSBENCH oltp_read_write.
    Sysbench,
    /// OLTPBench TPC-C.
    Tpcc,
    /// OLTPBench Twitter.
    Twitter,
    /// Production hotel-booking workload.
    Hotel,
    /// Production sales/reporting workload.
    Sales,
    /// Analytics/reporting mix (star-schema scans and aggregations); the
    /// drift target of dynamic-workload schedules, not part of the paper's
    /// Figure 3 evaluation suite.
    Olap,
}

impl WorkloadKind {
    /// Short display name.
    pub fn name(&self) -> &'static str {
        match self {
            WorkloadKind::Sysbench => "SYSBENCH",
            WorkloadKind::Tpcc => "TPC-C",
            WorkloadKind::Twitter => "Twitter",
            WorkloadKind::Hotel => "Hotel",
            WorkloadKind::Sales => "Sales",
            WorkloadKind::Olap => "OLAP",
        }
    }
}

/// A fully parameterized workload.
///
/// The headline fields reproduce Table 2 (size, threads, R/W ratio, request
/// rate); the remaining fields parameterize the analytic performance model
/// (see `model.rs`) and are chosen per workload family so the simulated
/// response surfaces have the qualitative structure the paper reports.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    /// Human-readable name (also the repository task label).
    pub name: String,
    /// Workload family.
    pub kind: WorkloadKind,
    /// Dataset size in GB.
    pub data_gb: f64,
    /// Client connections/threads.
    pub threads: u32,
    /// Read part of the R/W ratio (e.g. 7 in 7:2).
    pub read_parts: f64,
    /// Write part of the R/W ratio (e.g. 2 in 7:2).
    pub write_parts: f64,
    /// Client request rate in txn/s; `None` means closed-loop (production
    /// workloads whose rate follows the clients).
    pub request_rate: Option<f64>,
    /// Closed-loop think time per transaction in ms.
    pub think_time_ms: f64,
    /// Queries per transaction.
    pub queries_per_txn: f64,
    /// Base CPU cost per query in microseconds (parse + execute on cached data).
    pub base_cpu_us_per_query: f64,
    /// Logical pages touched per query.
    pub pages_per_query: f64,
    /// Baseline probability that a query contends on a lock/mutex at
    /// concurrency ≈ one thread per core.
    pub lock_contention_base: f64,
    /// Access skew: multiplies the miss-curve exponent (higher = hotter
    /// working set = better caching).
    pub skew: f64,
    /// Fraction of queries that sort / use temp tables.
    pub tmp_table_frac: f64,
    /// Number of distinct tables the workload touches.
    pub tables: u32,
    /// Redo log bytes per transaction.
    pub log_bytes_per_txn: f64,
}

impl WorkloadSpec {
    /// Fraction of operations that write.
    pub fn write_fraction(&self) -> f64 {
        self.write_parts / (self.read_parts + self.write_parts)
    }

    /// SYSBENCH oltp_read_write: 10 GB, 64 threads, R/W 7:2, 21 K txn/s.
    pub fn sysbench() -> Self {
        WorkloadSpec {
            name: "SYSBENCH".into(),
            kind: WorkloadKind::Sysbench,
            data_gb: 10.0,
            threads: 64,
            read_parts: 7.0,
            write_parts: 2.0,
            request_rate: Some(21_000.0),
            think_time_ms: 0.0,
            queries_per_txn: 20.0,
            base_cpu_us_per_query: 70.0,
            pages_per_query: 3.5,
            lock_contention_base: 0.35,
            skew: 1.0,
            tmp_table_frac: 0.05,
            tables: 150,
            log_bytes_per_txn: 1500.0,
        }
    }

    /// TPC-C: 200 warehouses (≈13 GB class in Table 2), 56 threads, R/W
    /// 19:10, 2 K txn/s.
    pub fn tpcc() -> Self {
        WorkloadSpec {
            name: "TPC-C".into(),
            kind: WorkloadKind::Tpcc,
            data_gb: 16.26,
            threads: 56,
            read_parts: 19.0,
            write_parts: 10.0,
            request_rate: Some(2_000.0),
            think_time_ms: 0.0,
            queries_per_txn: 30.0,
            base_cpu_us_per_query: 300.0,
            pages_per_query: 4.5,
            lock_contention_base: 0.55,
            skew: 1.3,
            tmp_table_frac: 0.08,
            tables: 9,
            log_bytes_per_txn: 3000.0,
        }
    }

    /// TPC-C with an explicit warehouse count. Data sizes interpolate the
    /// anchors the paper reports in Table 7.
    pub fn tpcc_warehouses(warehouses: u32) -> Self {
        let mut w = WorkloadSpec::tpcc();
        w.name = format!("TPC-C-{warehouses}wh");
        w.data_gb = tpcc_size_gb(warehouses);
        w
    }

    /// OLTPBench Twitter: 29 GB, 512 threads, R/W 116:1, 30 K txn/s.
    pub fn twitter() -> Self {
        WorkloadSpec {
            name: "Twitter".into(),
            kind: WorkloadKind::Twitter,
            data_gb: 29.0,
            threads: 512,
            read_parts: 116.0,
            write_parts: 1.0,
            request_rate: Some(30_000.0),
            think_time_ms: 0.0,
            queries_per_txn: 5.0,
            base_cpu_us_per_query: 45.0,
            pages_per_query: 2.5,
            lock_contention_base: 0.50,
            skew: 1.8,
            tmp_table_frac: 0.02,
            tables: 5,
            log_bytes_per_txn: 400.0,
        }
    }

    /// Production hotel-booking workload: 14 GB, 256 threads, R/W 19:1,
    /// closed-loop.
    pub fn hotel() -> Self {
        WorkloadSpec {
            name: "Hotel".into(),
            kind: WorkloadKind::Hotel,
            data_gb: 14.0,
            threads: 256,
            read_parts: 19.0,
            write_parts: 1.0,
            request_rate: None,
            think_time_ms: 45.0,
            queries_per_txn: 8.0,
            base_cpu_us_per_query: 230.0,
            pages_per_query: 4.0,
            lock_contention_base: 0.40,
            skew: 1.4,
            tmp_table_frac: 0.15,
            tables: 20,
            log_bytes_per_txn: 900.0,
        }
    }

    /// Production sales/reporting workload: 10 GB, 256 threads, R/W 154:1,
    /// closed-loop.
    pub fn sales() -> Self {
        WorkloadSpec {
            name: "Sales".into(),
            kind: WorkloadKind::Sales,
            data_gb: 10.0,
            threads: 256,
            read_parts: 154.0,
            write_parts: 1.0,
            request_rate: None,
            think_time_ms: 90.0,
            queries_per_txn: 12.0,
            base_cpu_us_per_query: 380.0,
            pages_per_query: 6.0,
            lock_contention_base: 0.15,
            skew: 1.1,
            tmp_table_frac: 0.35,
            tables: 40,
            log_bytes_per_txn: 200.0,
        }
    }

    /// Analytics/reporting mix: 80 GB, 32 closed-loop clients with long
    /// think times, few heavy multi-join scan queries per transaction, most
    /// of them sorting through temp tables. The drift *target* for dynamic
    /// workloads — deliberately excluded from the Figure 3 evaluation suite
    /// and the repository catalog, both pinned by the paper's experiments.
    pub fn olap() -> Self {
        WorkloadSpec {
            name: "OLAP".into(),
            kind: WorkloadKind::Olap,
            data_gb: 80.0,
            threads: 32,
            read_parts: 49.0,
            write_parts: 1.0,
            request_rate: None,
            think_time_ms: 500.0,
            queries_per_txn: 4.0,
            base_cpu_us_per_query: 2500.0,
            pages_per_query: 40.0,
            lock_contention_base: 0.05,
            skew: 0.6,
            tmp_table_frac: 0.6,
            tables: 25,
            log_bytes_per_txn: 100.0,
        }
    }

    /// The five evaluation workloads of Figure 3 in paper order.
    pub fn evaluation_suite() -> Vec<WorkloadSpec> {
        vec![
            WorkloadSpec::sysbench(),
            WorkloadSpec::twitter(),
            WorkloadSpec::tpcc(),
            WorkloadSpec::hotel(),
            WorkloadSpec::sales(),
        ]
    }

    /// Builder: override the dataset size.
    pub fn with_data_gb(mut self, gb: f64) -> Self {
        self.data_gb = gb;
        self.name = format!("{}-{}G", self.name, gb.round() as i64);
        self
    }

    /// Builder: override the client request rate.
    pub fn with_request_rate(mut self, rate: f64) -> Self {
        self.request_rate = Some(rate);
        self
    }

    /// Builder: override the read/write mix (used for the Twitter case-study
    /// variations W1–W5 built by raising the INSERT ratio, Table 5).
    pub fn with_rw_ratio(mut self, read_parts: f64, write_parts: f64) -> Self {
        self.read_parts = read_parts;
        self.write_parts = write_parts;
        self
    }

    /// Builder: rename.
    pub fn named(mut self, name: &str) -> Self {
        self.name = name.into();
        self
    }

    /// The Twitter case-study variations of Table 5: W1–W5 with R/W ratios
    /// 32:1, 19:1, 14:1, 11:1, 9:1.
    pub fn twitter_variations() -> Vec<WorkloadSpec> {
        [(32.0, "W1"), (19.0, "W2"), (14.0, "W3"), (11.0, "W4"), (9.0, "W5")]
            .iter()
            .map(|&(reads, name)| {
                WorkloadSpec::twitter().with_rw_ratio(reads, 1.0).named(name)
            })
            .collect()
    }

    /// The 17 distinct workloads backing the paper's data repository
    /// ("34 past tuning tasks ... from 17 different workloads and 2 hardware
    /// environments"). Five are the evaluation workloads; the rest are
    /// realistic parameter variations.
    pub fn repository_catalog() -> Vec<WorkloadSpec> {
        let mut out = WorkloadSpec::evaluation_suite();
        out.push(WorkloadSpec::sysbench().with_data_gb(30.0));
        out.push(WorkloadSpec::sysbench().with_data_gb(100.0));
        out.push(
            WorkloadSpec::sysbench().with_rw_ratio(9.0, 1.0).named("SYSBENCH-readmostly"),
        );
        out.push(WorkloadSpec::sysbench().with_rw_ratio(1.0, 1.0).named("SYSBENCH-writeheavy"));
        out.push(WorkloadSpec::tpcc().with_data_gb(100.0));
        out.push(WorkloadSpec::tpcc_warehouses(500));
        out.extend(WorkloadSpec::twitter_variations().into_iter().take(3));
        out.push(WorkloadSpec::hotel().with_rw_ratio(9.0, 1.0).named("Hotel-peak"));
        out.push(WorkloadSpec::sales().with_rw_ratio(60.0, 1.0).named("Sales-ingest"));
        out.push(WorkloadSpec::twitter().with_request_rate(15_000.0).named("Twitter-offpeak"));
        assert_eq!(out.len(), 17);
        out
    }

    /// A simulated fleet tenant's workload: tenant `id` cycles through the
    /// five evaluation mixes and perturbs size, request rate, and R/W mix
    /// with jitter seeded by the **id alone** — a pure function of `id`, so
    /// a tenant's workload never depends on fleet composition or ordering
    /// (the same position-independence contract as the fleet seed mixing).
    /// The jitter stream comes from the shared [`crate::seed::domain_rng`]
    /// helper under [`crate::seed::TENANT_DOMAIN`], so tenant ids and
    /// schedule seeds can never alias each other's streams.
    pub fn fleet_tenant(id: u64) -> WorkloadSpec {
        let mut base = match id % 5 {
            0 => WorkloadSpec::sysbench(),
            1 => WorkloadSpec::twitter(),
            2 => WorkloadSpec::tpcc(),
            3 => WorkloadSpec::hotel(),
            _ => WorkloadSpec::sales(),
        };
        let mut rng = crate::seed::domain_rng(crate::seed::TENANT_DOMAIN, id);
        // Size ×[0.75, 1.5), rate ×[0.8, 1.2), and a mild write-mix tilt —
        // enough spread that sibling tenants genuinely differ, small enough
        // that every tenant stays in the simulator's calibrated regime.
        let size = base.data_gb * (0.75 + 0.75 * rng.random::<f64>());
        let rate_scale = 0.8 + 0.4 * rng.random::<f64>();
        let tilt = 0.8 + 0.4 * rng.random::<f64>();
        let name = format!("{}-t{id}", base.name);
        base.data_gb = size;
        base.request_rate = base.request_rate.map(|r| r * rate_scale);
        base.write_parts *= tilt;
        base.name = name;
        base
    }
}

/// TPC-C dataset size by warehouse count, interpolating Table 7's anchors.
pub fn tpcc_size_gb(warehouses: u32) -> f64 {
    const ANCHORS: [(f64, f64); 5] =
        [(100.0, 7.29), (200.0, 16.26), (500.0, 35.26), (800.0, 56.59), (1000.0, 117.06)];
    let w = warehouses as f64;
    if w <= ANCHORS[0].0 {
        return ANCHORS[0].1 * w / ANCHORS[0].0;
    }
    for pair in ANCHORS.windows(2) {
        let (w0, s0) = pair[0];
        let (w1, s1) = pair[1];
        if w <= w1 {
            return s0 + (s1 - s0) * (w - w0) / (w1 - w0);
        }
    }
    // Extrapolate past the last anchor linearly in warehouses.
    let (w1, s1) = ANCHORS[4];
    s1 * w / w1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_parameters() {
        let s = WorkloadSpec::sysbench();
        assert_eq!(s.threads, 64);
        assert_eq!(s.request_rate, Some(21_000.0));
        assert!((s.write_fraction() - 2.0 / 9.0).abs() < 1e-12);

        let t = WorkloadSpec::twitter();
        assert_eq!(t.threads, 512);
        assert_eq!(t.data_gb, 29.0);

        let h = WorkloadSpec::hotel();
        assert!(h.request_rate.is_none());
        assert_eq!(h.threads, 256);
    }

    #[test]
    fn tpcc_sizes_match_table7_anchors() {
        assert!((tpcc_size_gb(100) - 7.29).abs() < 1e-9);
        assert!((tpcc_size_gb(200) - 16.26).abs() < 1e-9);
        assert!((tpcc_size_gb(500) - 35.26).abs() < 1e-9);
        assert!((tpcc_size_gb(800) - 56.59).abs() < 1e-9);
        assert!((tpcc_size_gb(1000) - 117.06).abs() < 1e-9);
    }

    #[test]
    fn tpcc_size_is_monotone() {
        let mut last = 0.0;
        for wh in [50, 100, 150, 200, 400, 600, 900, 1000, 1500] {
            let s = tpcc_size_gb(wh);
            assert!(s > last, "size not monotone at {wh} warehouses");
            last = s;
        }
    }

    #[test]
    fn twitter_variations_match_table5() {
        let vars = WorkloadSpec::twitter_variations();
        assert_eq!(vars.len(), 5);
        assert_eq!(vars[0].name, "W1");
        assert!((vars[0].read_parts - 32.0).abs() < 1e-12);
        // Write fraction strictly increases from W1 to W5.
        for pair in vars.windows(2) {
            assert!(pair[1].write_fraction() > pair[0].write_fraction());
        }
    }

    #[test]
    fn fleet_tenants_are_deterministic_distinct_and_calibrated() {
        for id in 0..50u64 {
            let a = WorkloadSpec::fleet_tenant(id);
            let b = WorkloadSpec::fleet_tenant(id);
            assert_eq!(a, b, "tenant {id} must be a pure function of its id");
            assert!(a.data_gb > 0.0 && a.write_fraction() > 0.0 && a.write_fraction() < 1.0);
        }
        let names: std::collections::HashSet<_> =
            (0..50u64).map(|id| WorkloadSpec::fleet_tenant(id).name).collect();
        assert_eq!(names.len(), 50, "tenant names must be unique");
        // Same family, different ids → different parameters (the jitter bites).
        let w0 = WorkloadSpec::fleet_tenant(0);
        let w5 = WorkloadSpec::fleet_tenant(5);
        assert_eq!(w0.kind, w5.kind);
        assert_ne!(w0.data_gb, w5.data_gb);
    }

    #[test]
    fn repository_catalog_has_17_distinct_workloads() {
        let cat = WorkloadSpec::repository_catalog();
        assert_eq!(cat.len(), 17);
        let names: std::collections::HashSet<_> = cat.iter().map(|w| w.name.clone()).collect();
        assert_eq!(names.len(), 17, "names must be unique");
    }

    #[test]
    fn olap_family_is_closed_loop_and_outside_the_pinned_suites() {
        let o = WorkloadSpec::olap();
        assert_eq!(o.kind.name(), "OLAP");
        assert!(o.request_rate.is_none(), "OLAP is closed-loop");
        assert!(o.write_fraction() < 0.05, "OLAP is read-dominated");
        // The Figure 3 suite and the repository catalog are pinned by the
        // paper's experiments (and by golden digests downstream): the new
        // family must not leak into either.
        assert!(WorkloadSpec::evaluation_suite().iter().all(|w| w.kind != WorkloadKind::Olap));
        assert!(WorkloadSpec::repository_catalog().iter().all(|w| w.kind != WorkloadKind::Olap));
    }

    #[test]
    fn evaluation_suite_order_matches_figure3() {
        let names: Vec<_> =
            WorkloadSpec::evaluation_suite().iter().map(|w| w.kind.name()).collect();
        assert_eq!(names, vec!["SYSBENCH", "Twitter", "TPC-C", "Hotel", "Sales"]);
    }
}
