//! Seed-domain separation for dbsim's derived RNG streams.
//!
//! Two different subsystems derive workload parameters from small integer
//! identifiers: [`crate::WorkloadSpec::fleet_tenant`] jitters a tenant's
//! workload from its tenant id, and [`crate::schedule::WorkloadSchedule`]
//! jitters drift-phase shapes from a session's schedule seed. Both expand the
//! identifier through splitmix64, and both draw their identifiers from the
//! same low-entropy range (0, 1, 2, …) — so without domain separation, tenant
//! 7's workload jitter and schedule seed 7's drift jitter would read the
//! *same* stream, silently correlating quantities that must be independent.
//!
//! [`domain_rng`] is the single shared entry point: every caller tags its
//! identifier with a domain constant before seeding. The constants differ in
//! bits far above any realistic identifier (both exceed 2^40 and their XOR
//! distance exceeds 2^42), so streams from different domains cannot collide
//! for identifiers below ~4×10^12 — proven by the regression test below.

use xrand::SplitMix64;

/// Domain tag for fleet-tenant workload jitter
/// ([`crate::WorkloadSpec::fleet_tenant`]). The value is the historical
/// tenant seed mask, kept bit-for-bit so existing tenant workloads — and the
/// fleet bench digests pinned on them — are unchanged.
pub const TENANT_DOMAIN: u64 = 0xF1EE7_7E4A47;

/// Domain tag for workload-schedule drift jitter
/// ([`crate::schedule::WorkloadSchedule`]).
pub const SCHEDULE_DOMAIN: u64 = 0x5C4ED_0D21F7;

/// A splitmix64 stream for identifier `id` in domain `domain`: the one way
/// every dbsim subsystem expands a small identifier into workload jitter.
pub fn domain_rng(domain: u64, id: u64) -> SplitMix64 {
    SplitMix64::new(id ^ domain)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xrand::RngExt;

    #[test]
    fn domains_cannot_collide_for_realistic_identifiers() {
        // Raw stream seeds are `id ^ domain`; two domains collide only when
        // `id_a ^ id_b == TENANT_DOMAIN ^ SCHEDULE_DOMAIN`. That XOR distance
        // exceeds 2^42, so identifiers below 2^21 can never bridge it.
        let distance = TENANT_DOMAIN ^ SCHEDULE_DOMAIN;
        assert!(distance > 1 << 42, "domain constants too close: {distance:#x}");
        for id_a in 0..64u64 {
            for id_b in 0..64u64 {
                assert_ne!(
                    id_a ^ TENANT_DOMAIN,
                    id_b ^ SCHEDULE_DOMAIN,
                    "tenant {id_a} and schedule {id_b} share a raw seed"
                );
            }
        }
    }

    #[test]
    fn tenant_domain_reproduces_the_historical_tenant_stream() {
        // The helper must be a pure refactor of the old inline seeding
        // (`SplitMix64::new(id ^ 0xF1EE7_7E4A47)`): fleet tenant workloads
        // are pinned by fleet bench digests and must not move.
        for id in [0u64, 1, 7, 41, 12_345] {
            let mut new = domain_rng(TENANT_DOMAIN, id);
            let mut old = SplitMix64::new(id ^ 0xF1EE7_7E4A47);
            for _ in 0..4 {
                assert_eq!(new.random::<f64>(), old.random::<f64>());
            }
        }
    }

    #[test]
    fn same_identifier_draws_different_streams_per_domain() {
        let mut tenant = domain_rng(TENANT_DOMAIN, 7);
        let mut schedule = domain_rng(SCHEDULE_DOMAIN, 7);
        assert_ne!(tenant.random::<f64>(), schedule.random::<f64>());
    }
}
