//! The analytic performance model mapping (instance, workload, configuration)
//! to resource utilization, throughput, latency, and internal metrics.
//!
//! The model is a deterministic, closed-form approximation of an InnoDB-style
//! engine. Each mechanism below corresponds to a real MySQL behaviour and to a
//! lever the paper's evaluation turns:
//!
//! * **Buffer pool / miss curve** — misses decay exponentially in
//!   `pool/data`, calibrated to the hit ratios of Table 7.
//! * **Concurrency admission** — `innodb_thread_concurrency` caps the threads
//!   running inside InnoDB. Beyond ~1.25× cores, running threads thrash
//!   caches and contend on mutexes, inflating CPU per transaction (the
//!   dominant CPU waste of the high-thread-count workloads; see the §7.3 case
//!   study where 512-thread Twitter tunes the limit down to 13).
//! * **Spin waits** — `innodb_spin_wait_delay` × `innodb_sync_spin_loops`
//!   burn CPU per contended lock; disabling spinning saves CPU but adds
//!   context-switch latency (the Figure 7 trade-off arrow).
//! * **Background page cleaning** — page cleaners scanning
//!   `innodb_lru_scan_depth` burn CPU; scanning too little under write load
//!   leaves flushing to user threads (stalls).
//! * **Flush eagerness** — early flushing destroys dirty-page coalescing so
//!   hot pages are written repeatedly; eagerness rises with a small redo log
//!   (checkpoint pressure), a low `innodb_max_dirty_pages_pct`, a high
//!   pre-flush low-water mark, and disabled adaptive flushing. Doublewrite
//!   and flush-neighbors multiply write bytes (the I/O tuning levers of
//!   Figure 9).
//! * **Durability syncs** — `innodb_flush_log_at_trx_commit` / `sync_binlog`
//!   add commit-path fsyncs (latency + IOPS).
//! * **Memory** — buffer pool fraction plus per-connection sort/join/read
//!   buffers, temp tables, and caches; undersizing spills to disk.
//!
//! Everything is per-second steady state. The entry point is [`evaluate_raw`];
//! [`PerfBreakdown`] exposes intermediate quantities so tests can pin each
//! mechanism and the SHAP explainer can tell coherent stories.

use crate::instance::InstanceType;
use crate::knobs::Configuration;
use crate::metrics::{InternalMetrics, ResourceUsage};
use crate::workload::WorkloadSpec;

/// Page size in KB (InnoDB default 16 KB pages).
const PAGE_KB: f64 = 16.0;

/// Model constants, named so calibration tests can reference them.
pub mod consts {
    /// Miss-curve scale: miss ratio at pool→0.
    pub const MISS_M0: f64 = 0.105;
    /// Miss-curve exponent per unit pool/data.
    pub const MISS_BETA: f64 = 2.68;
    /// Lower clamp on the miss ratio.
    pub const MISS_MIN: f64 = 5e-4;
    /// Upper clamp on the miss ratio.
    pub const MISS_MAX: f64 = 0.60;
    /// Optimal running threads per core before contention sets in.
    pub const CONC_SWEET_SPOT_PER_CORE: f64 = 1.25;
    /// Contention multiplier coefficient (CPU inflation per unit overload^1.45).
    pub const CONTENTION_COEF: f64 = 0.20;
    /// CPU microseconds burned per spin unit (delay × loops) per contended lock.
    pub const SPIN_US_PER_UNIT: f64 = 0.4;
    /// Context-switch CPU cost when a lock wait sleeps instead of spinning (µs).
    pub const CTX_SWITCH_CPU_US: f64 = 3.0;
    /// Context-switch latency when sleeping on a lock (ms).
    pub const CTX_SWITCH_LAT_MS: f64 = 0.030;
    /// Write queries cost this multiple of a read query's CPU.
    pub const WRITE_CPU_FACTOR: f64 = 1.5;
    /// CPU microseconds to issue one I/O.
    pub const IO_SUBMIT_CPU_US: f64 = 6.0;
    /// Table reopen CPU cost on a table-cache miss (µs).
    pub const TABLE_REOPEN_CPU_US: f64 = 180.0;
    /// Baseline LRU-scan background share of instance cores at defaults.
    pub const LRU_BG_CORE_FRAC: f64 = 0.05;
    /// Fraction of page dirtying that coalesces (is absorbed by an
    /// already-dirty page) under perfectly lazy flushing.
    pub const COALESCE_BASE: f64 = 0.12;
    /// Base storage read latency in ms (cloud SSD).
    pub const IO_BASE_LAT_MS: f64 = 0.12;
    /// Latency of an fsync in ms.
    pub const FSYNC_LAT_MS: f64 = 0.25;
    /// Pages dirtied per write query (post-coalescing of row-level writes).
    pub const PAGES_DIRTIED_PER_WRITE_QUERY: f64 = 0.35;
    /// Fraction of a transaction's execution during which it holds an
    /// InnoDB admission slot (waits release the slot).
    pub const ADMISSION_HOLD_FRAC: f64 = 0.6;
    /// Fraction of read misses that are synchronous (client-visible).
    pub const SYNC_MISS_FRAC: f64 = 0.7;
}

/// All intermediate and final quantities of one model evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfBreakdown {
    /// Buffer pool size in GB.
    pub buffer_pool_gb: f64,
    /// Buffer pool miss ratio (0–1).
    pub miss_ratio: f64,
    /// Threads admitted to run inside InnoDB.
    pub inno_concurrency: f64,
    /// CPU inflation from over-concurrency (≥ 1).
    pub contention_multiplier: f64,
    /// Contended lock events per transaction.
    pub locks_per_txn: f64,
    /// CPU per transaction, µs, foreground total.
    pub cpu_us_per_txn: f64,
    /// Background CPU in cores.
    pub bg_cpu_cores: f64,
    /// Flush eagerness in [0, 1] (0 = perfectly lazy flushing).
    pub flush_eagerness: f64,
    /// Checkpoint pressure in [0, 1] (1 = redo log critically small).
    pub checkpoint_pressure: f64,
    /// Sustainable throughput ceiling, txn/s.
    pub capacity_tps: f64,
    /// Achieved throughput, txn/s.
    pub tps: f64,
    /// Utilization of the binding bottleneck (0–1).
    pub rho: f64,
    /// Mean service time per transaction, ms.
    pub svc_ms: f64,
    /// 99th-percentile latency, ms.
    pub p99_ms: f64,
    /// Read IOPS (pages/s).
    pub read_iops: f64,
    /// Write IOPS including flush amplification.
    pub write_iops: f64,
    /// Log/binlog sync IOPS.
    pub log_iops: f64,
    /// Total I/O bandwidth, MB/s.
    pub io_mbps: f64,
    /// Total IOPS.
    pub total_iops: f64,
    /// Resident memory, GB.
    pub mem_gb: f64,
    /// CPU utilization percent of the instance (0–100).
    pub cpu_pct: f64,
    /// Internal runtime metrics.
    pub internal: InternalMetrics,
}

impl PerfBreakdown {
    /// The externally observable resource vector.
    pub fn resources(&self) -> ResourceUsage {
        ResourceUsage {
            cpu_pct: self.cpu_pct,
            mem_gb: self.mem_gb,
            io_mbps: self.io_mbps,
            iops: self.total_iops,
        }
    }
}

/// Evaluates the analytic model (no observation noise).
pub fn evaluate_raw(
    instance: InstanceType,
    workload: &WorkloadSpec,
    config: &Configuration,
) -> PerfBreakdown {
    let cores = instance.cores() as f64;
    let ram = instance.ram_gb();
    let threads = workload.threads as f64;
    let wf = workload.write_fraction();
    let q = workload.queries_per_txn;
    let read_q = q * (1.0 - wf);
    let write_q = q * wf;

    // ---- buffer pool and miss ratio -------------------------------------
    let pool_gb = (config.get("innodb_buffer_pool_frac") * ram).max(0.25);
    let pool_ratio = pool_gb / workload.data_gb.max(0.1);
    // LRU old-sublist mistuning inflates misses a little; optimum depends on
    // how scan-heavy the workload is.
    let obp = config.get("innodb_old_blocks_pct");
    let obp_opt = 10.0 + 60.0 * workload.tmp_table_frac.min(1.0);
    let obp_penalty = 1.0 + 0.35 * ((obp - obp_opt) / 90.0).powi(2) * 4.0;
    let miss_ratio = (consts::MISS_M0
        * (-consts::MISS_BETA * workload.skew * pool_ratio).exp()
        * obp_penalty)
        .clamp(consts::MISS_MIN, consts::MISS_MAX);

    // ---- concurrency and contention -------------------------------------
    let tc = config.get("innodb_thread_concurrency");
    let inno_conc = if tc <= 0.5 { threads } else { threads.min(tc) };
    let sweet = cores * consts::CONC_SWEET_SPOT_PER_CORE;
    let overload = (inno_conc / sweet - 1.0).max(0.0);
    // Buffer pool partitioning relieves part of the contention; too few
    // instances on a large machine contend harder.
    let bpi = config.get("innodb_buffer_pool_instances");
    let bpi_relief = (bpi / 8.0).powf(0.25).clamp(0.7, 1.15);
    let contention_multiplier =
        1.0 + consts::CONTENTION_COEF * overload.powf(1.45) / bpi_relief;

    // Probability a query hits a contended latch grows with admitted
    // concurrency relative to cores.
    let conc_ratio = (inno_conc / sweet).min(3.0);
    let ahi = config.get("innodb_adaptive_hash_index");
    let p_lock =
        (workload.lock_contention_base * conc_ratio * 0.5 * (1.0 + 0.15 * ahi)).min(0.95);
    let locks_per_txn = q * p_lock;

    // Spin-versus-sleep on contended locks. Spinning burns CPU for at most
    // the lock hold time (which grows with contention); waits that stop
    // spinning early sleep instead, which is CPU-cheap but adds a context
    // switch to the wait.
    let spin_delay = config.get("innodb_spin_wait_delay");
    let spin_loops = config.get("innodb_sync_spin_loops");
    let sync_arr = config.get("innodb_sync_array_size");
    let spin_units = spin_delay * spin_loops;
    let hold_us = 20.0 + 20.0 * conc_ratio;
    let spin_cpu_us = locks_per_txn
        * (spin_units * consts::SPIN_US_PER_UNIT / sync_arr.sqrt()).min(hold_us);
    // With little spinning, waits sleep: cheap CPU, expensive latency.
    let sleep_frac = (1.0 - spin_units / 40.0).clamp(0.0, 1.0);
    let sleep_cpu_us = locks_per_txn * sleep_frac * consts::CTX_SWITCH_CPU_US;
    let lock_wait_lat_ms = locks_per_txn
        * (hold_us / 2000.0 + sleep_frac * consts::CTX_SWITCH_LAT_MS);

    // ---- table cache ------------------------------------------------------
    let toc = config.get("table_open_cache");
    let toc_needed = workload.tables as f64 + threads * 2.0;
    let toc_deficit = ((toc_needed - toc) / toc_needed).clamp(0.0, 1.0);
    let toc_cpu_us = q * toc_deficit * 0.6 * consts::TABLE_REOPEN_CPU_US;

    // ---- adaptive hash index ---------------------------------------------
    // AHI accelerates hot-read lookups but costs maintenance on writes.
    let ahi_read_saving = if ahi >= 0.5 { 0.10 * workload.skew.min(2.0) / 2.0 } else { 0.0 };
    let ahi_write_cost = if ahi >= 0.5 { 0.30 } else { 0.0 };

    // ---- base CPU per transaction -----------------------------------------
    let base = workload.base_cpu_us_per_query;
    let read_cpu = read_q * base * (1.0 - ahi_read_saving);
    let write_cpu = write_q * base * consts::WRITE_CPU_FACTOR * (1.0 + ahi_write_cost);
    let exec_cpu_us = (read_cpu + write_cpu) * contention_multiplier;

    // Thread cache misses cost connection-thread churn per transaction.
    let tcs = config.get("thread_cache_size");
    let thread_churn_us = if tcs < threads { 0.08 * (threads - tcs) } else { 0.0 };

    // Concurrency tickets: very low values re-queue threads constantly.
    let tickets = config.get("innodb_concurrency_tickets");
    let ticket_cpu_us = if tc > 0.5 { (q / tickets).min(q) * 25.0 } else { 0.0 };

    // ---- I/O volumes -------------------------------------------------------
    // Read path.
    let rat = config.get("innodb_read_ahead_threshold");
    let ra_waste = 1.0 + 0.25 * (1.0 - rat / 64.0).clamp(0.0, 1.0) * 0.5;
    let rra_waste = if config.get("innodb_random_read_ahead") >= 0.5 { 1.30 } else { 1.0 };
    let cb_on = config.get("innodb_change_buffering") >= 0.5;
    let cb_saving = if cb_on { 1.0 - 0.25 * wf } else { 1.0 };
    let page_misses_per_txn = q * workload.pages_per_query * miss_ratio;
    let read_pages_per_txn = page_misses_per_txn * ra_waste * rra_waste * cb_saving;

    // Write path: dirty pages, coalescing, and flush eagerness.
    let dirtied_per_txn = write_q * consts::PAGES_DIRTIED_PER_WRITE_QUERY;
    let log_bytes_per_txn = workload.log_bytes_per_txn;
    let log_file_mb = config.get("innodb_log_file_size_mb");
    let log_capacity_bytes = log_file_mb * 1e6 * 2.0; // two-file redo group

    // Redo fill time at the offered rate decides checkpoint pressure. Use the
    // offered rate (not achieved tps) so pressure is a property of the config.
    let offered = workload.request_rate.unwrap_or(threads * 10.0);
    let redo_rate = offered * log_bytes_per_txn * wf.max(0.02) / wf.max(0.02); // bytes/s
    let fill_seconds = if redo_rate > 0.0 { log_capacity_bytes / redo_rate } else { f64::MAX };
    let checkpoint_pressure = (1.0 - fill_seconds / 120.0).clamp(0.0, 1.0);

    let mdp = config.get("innodb_max_dirty_pages_pct");
    let lwm = config.get("innodb_max_dirty_pages_pct_lwm");
    let adaptive = config.get("innodb_adaptive_flushing") >= 0.5;
    let avg_loops = config.get("innodb_flushing_avg_loops");
    let twitchy = (30.0 / avg_loops).powf(0.5).min(2.0) * 0.10;
    let flush_eagerness = (0.40 * (1.0 - mdp / 99.0)
        + 0.30 * (lwm / 50.0)
        + if adaptive { twitchy } else { 0.30 }
        + 0.50 * checkpoint_pressure)
        .clamp(0.0, 1.0);
    let coalesce = consts::COALESCE_BASE + (1.0 - consts::COALESCE_BASE) * flush_eagerness;
    let neighbors = config.get("innodb_flush_neighbors");
    let neighbor_amp = 1.0 + 0.35 * neighbors;
    let dw_on = config.get("innodb_doublewrite") >= 0.5;
    let dw_bytes = if dw_on { 2.0 } else { 1.0 };
    let dw_iops = if dw_on { 1.08 } else { 1.0 };

    let flush_pages_per_txn = dirtied_per_txn * coalesce * neighbor_amp;

    // Background flushing capacity: page cleaners constrained by io_capacity.
    let depth = config.get("innodb_lru_scan_depth");
    let cleaners = config.get("innodb_page_cleaners");
    let io_capacity = config.get("innodb_io_capacity");
    let io_capacity_max = config.get("innodb_io_capacity_max").max(io_capacity);
    let cleaner_pages_per_s = (cleaners * depth * 4.0).min(io_capacity_max.max(200.0));

    // ---- fixpoint over tps --------------------------------------------------
    // Latency depends on device utilization which depends on tps; iterate.
    let max_iops = instance.max_iops();
    let max_mbps = instance.max_io_mbps();
    let workers = inno_conc.min(threads).max(1.0);
    let flc = config.get("innodb_flush_log_at_trx_commit");
    let sync_binlog = config.get("sync_binlog");

    // The extended catalogue's minor-impact knobs: a weighted misconfiguration
    // score in [0,1] that leaks a few percent of CPU and latency. Exactly 0.0
    // when those knobs sit at their defaults, so pre-extension behaviour (and
    // the golden digests that pin it) is reproduced bit-for-bit.
    let micro = crate::knobs::micro_misconfig_score(config);

    let mut tps = offered.min(threads * 50.0);
    let mut svc_ms = 1.0;
    let mut rho: f64 = 0.5;
    let mut capacity = tps;
    let mut total_iops = 0.0;
    let mut io_mbps = 0.0;
    let mut read_iops = 0.0;
    let mut write_iops = 0.0;
    let mut log_iops = 0.0;
    #[allow(unused_assignments)]
    let mut user_flush_amp = 1.0;
    let mut cpu_us_per_txn = 0.0;
    let mut bg_cpu = 0.0;

    for _ in 0..25 {
        // I/O rates at the current tps estimate.
        read_iops = tps * read_pages_per_txn;
        let flush_demand = tps * flush_pages_per_txn;
        // If the configured flushing machinery cannot keep up, user threads
        // flush single pages themselves: more IOPS and a latency penalty.
        let bg_flush_capacity = cleaner_pages_per_s.max(io_capacity);
        user_flush_amp =
            if flush_demand > bg_flush_capacity && wf > 0.0 { 1.35 } else { 1.0 };
        write_iops = flush_demand * dw_iops * user_flush_amp;
        // Commit-path syncs: group commit batches fsyncs under load.
        let group = (tps / 4000.0).max(1.0);
        log_iops = match flc as i64 {
            0 => 2.0,
            1 => tps / group,
            _ => tps / (group * 4.0),
        } + if sync_binlog >= 1.0 { tps / (group * sync_binlog) } else { 0.0 };
        total_iops = read_iops + write_iops + log_iops;
        // Doublewrite doubles page-write *bytes* (each page lands in the
        // doublewrite buffer and at its home location) while batching keeps
        // the IOPS overhead small.
        io_mbps = read_iops * PAGE_KB / 1024.0
            + write_iops * PAGE_KB / 1024.0 * dw_bytes
            + tps * log_bytes_per_txn / 1e6;

        let iops_util = (total_iops / max_iops).min(0.99);
        let bw_util = (io_mbps / max_mbps).min(0.99);
        let dev_util = iops_util.max(bw_util);
        let io_lat_ms = consts::IO_BASE_LAT_MS * (1.0 + 3.0 * dev_util.powi(4) / (1.0 - dev_util));

        // CPU per transaction.
        let io_cpu_us = (read_pages_per_txn + flush_pages_per_txn) * consts::IO_SUBMIT_CPU_US;
        cpu_us_per_txn = exec_cpu_us
            + spin_cpu_us
            + sleep_cpu_us
            + toc_cpu_us
            + thread_churn_us
            + ticket_cpu_us
            + io_cpu_us
            + exec_cpu_us * 0.12 * micro;

        // Background CPU: page-cleaner LRU scans, purge coordination, I/O
        // threads polling, and buffer-pool-instance mistuning. These are the
        // "many small knobs" whose joint misconfiguration makes random
        // search plateau above the optimum.
        let purge = config.get("innodb_purge_threads");
        let rio = config.get("innodb_read_io_threads");
        let wio = config.get("innodb_write_io_threads");
        let bpi_opt = (cores / 6.0).clamp(1.0, 16.0);
        bg_cpu = cores * consts::LRU_BG_CORE_FRAC * (depth / 1024.0).powf(0.7)
            * (cleaners / 4.0).powf(0.4)
            + cores * 0.006 * purge
            + cores * 0.002 * (rio + wio)
            + cores * 0.003 * (bpi - bpi_opt).abs()
            + 0.06 * checkpoint_pressure * cores * 0.02
            + cores * 0.01 * micro;

        // Service time: CPU work + synchronous I/O + commit syncs + lock sleeps.
        let sync_reads = q * workload.pages_per_query * miss_ratio * consts::SYNC_MISS_FRAC;
        let commit_lat = match flc as i64 {
            1 => consts::FSYNC_LAT_MS,
            2 => 0.05,
            _ => 0.01,
        } + if (1.0..=1.5).contains(&sync_binlog) { consts::FSYNC_LAT_MS * 0.8 } else { 0.0 };
        let stall_ms = checkpoint_pressure.powi(2) * 6.0 * wf
            + if user_flush_amp > 1.0 { 2.5 * wf } else { 0.0 };
        // Spin burn overlaps the lock wait, so the service path counts
        // execution work plus waits, not the spin CPU.
        let exec_path_us = cpu_us_per_txn - spin_cpu_us - sleep_cpu_us;
        svc_ms = exec_path_us / 1000.0
            + sync_reads * io_lat_ms
            + commit_lat * wf.max(if flc as i64 == 1 { 0.3 } else { 0.0 })
            + lock_wait_lat_ms
            + stall_ms
            + 0.6 * micro;

        // Capacity from each bottleneck.
        let avail_cores = (cores - bg_cpu).max(0.5);
        let cap_cpu = avail_cores / (cpu_us_per_txn / 1e6);
        // Admission slots are released while a transaction waits on I/O or
        // locks, so a worker slot is held for only part of the service time.
        let cap_workers =
            workers / (svc_ms / 1000.0 * consts::ADMISSION_HOLD_FRAC).max(1e-9);
        let cap_io_iops = max_iops / ((read_pages_per_txn + flush_pages_per_txn).max(1e-9));
        let cap_io_bw = max_mbps
            / (((read_pages_per_txn + flush_pages_per_txn * dw_bytes) * PAGE_KB / 1024.0
                + log_bytes_per_txn / 1e6)
                .max(1e-12));
        capacity = cap_cpu.min(cap_workers).min(cap_io_iops).min(cap_io_bw).max(1.0);

        let new_tps = match workload.request_rate {
            Some(rate) => rate.min(capacity * 0.99),
            None => {
                // Closed loop: interactive response-time law.
                (threads / ((svc_ms + workload.think_time_ms) / 1000.0)).min(capacity * 0.99)
            }
        };
        rho = (new_tps / capacity).clamp(0.0, 0.99);
        if (new_tps - tps).abs() < 0.5 {
            tps = new_tps;
            break;
        }
        tps = 0.5 * tps + 0.5 * new_tps;
    }

    // Queueing delay on top of service time.
    let queue_wait = svc_ms * rho.powi(3) / (1.0 - rho) / workers.sqrt().max(1.0);
    let mean_lat = svc_ms + queue_wait;
    let p99_ms = mean_lat * (2.2 + 1.3 * rho * rho);

    // ---- memory --------------------------------------------------------------
    let sort_kb = config.get("sort_buffer_size_kb");
    let join_kb = config.get("join_buffer_size_kb");
    let readb_kb = config.get("read_buffer_size_kb");
    let tmp_mb = config.get("tmp_table_size_mb");
    let key_mb = config.get("key_buffer_size_mb");
    let log_buf_mb = config.get("innodb_log_buffer_size_mb");
    let binlog_kb = config.get("binlog_cache_size_kb");
    let per_conn_gb = (sort_kb + join_kb + readb_kb + binlog_kb) / 1024.0 / 1024.0;
    let active_conn = threads * 0.5;
    let tmp_concurrent = threads * workload.tmp_table_frac * 0.5;
    // Undersized sort buffers spill to disk instead of using memory.
    let sort_need_kb = 256.0 + 4096.0 * workload.tmp_table_frac;
    let sort_spill = sort_kb < sort_need_kb || tmp_mb < 16.0 * workload.tmp_table_frac * 10.0;
    let mem_gb = pool_gb
        + log_buf_mb / 1024.0
        + key_mb / 1024.0
        + per_conn_gb * active_conn
        + tmp_mb / 1024.0 * tmp_concurrent * if sort_spill { 0.2 } else { 1.0 }
        + toc * 4.0 / 1024.0 / 1024.0
        + threads * 0.256 / 1024.0
        + 1.2;

    // Disk temp-table penalty feeds back into CPU/IO lightly (reported via
    // metrics; second-order for the headline results).
    let tmp_disk_rate = if sort_spill { tps * workload.tmp_table_frac } else { 0.0 };

    // ---- CPU utilization -------------------------------------------------------
    let fg_cores = tps * cpu_us_per_txn / 1e6;
    let cpu_pct = (100.0 * (fg_cores + bg_cpu) / cores).clamp(0.3, 100.0);

    let internal = InternalMetrics {
        hit_ratio: 1.0 - miss_ratio,
        dirty_pct: (20.0 + 60.0 * (1.0 - flush_eagerness) * wf).min(mdp),
        lock_waits_per_s: tps * locks_per_txn,
        spin_rounds_per_s: tps * locks_per_txn * spin_units,
        ctx_switches_per_s: tps * locks_per_txn * sleep_frac + tps * 2.0,
        pages_read_per_s: read_iops,
        pages_written_per_s: write_iops,
        log_writes_per_s: log_iops,
        threads_running: (tps * svc_ms / 1000.0).min(workers),
        threads_cached: tcs.min(threads),
        tmp_disk_tables_per_s: tmp_disk_rate,
        table_open_misses_per_s: tps * q * toc_deficit * 0.6,
        checkpoint_age_ratio: 0.2 + 0.75 * checkpoint_pressure,
        pending_reads: read_iops / max_iops * 64.0,
        pending_writes: write_iops / max_iops * 64.0,
        buffer_pool_util: (workload.data_gb.min(pool_gb) / pool_gb).clamp(0.0, 1.0),
        cpu_user_pct: cpu_pct * 0.82,
        cpu_sys_pct: cpu_pct * 0.18,
        io_wait_pct: (100.0 * total_iops / max_iops * 0.3).min(60.0),
        qps: tps * q,
    };

    PerfBreakdown {
        buffer_pool_gb: pool_gb,
        miss_ratio,
        inno_concurrency: inno_conc,
        contention_multiplier,
        locks_per_txn,
        cpu_us_per_txn,
        bg_cpu_cores: bg_cpu,
        flush_eagerness,
        checkpoint_pressure,
        capacity_tps: capacity,
        tps,
        rho,
        svc_ms,
        p99_ms,
        read_iops,
        write_iops,
        log_iops,
        io_mbps,
        total_iops,
        mem_gb,
        cpu_pct,
        internal,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knobs::Configuration;

    fn default_eval(w: &WorkloadSpec) -> PerfBreakdown {
        evaluate_raw(InstanceType::A, w, &Configuration::dba_default())
    }

    #[test]
    fn rate_bounded_workload_hits_its_request_rate_at_default() {
        let w = WorkloadSpec::sysbench();
        let perf = default_eval(&w);
        assert!(
            perf.tps > 0.85 * 21_000.0,
            "sysbench default tps {} should be near the request rate",
            perf.tps
        );
    }

    #[test]
    fn default_config_wastes_cpu_on_high_concurrency_workloads() {
        let w = WorkloadSpec::twitter();
        let default = default_eval(&w);
        let tuned = Configuration::dba_default()
            .with("innodb_thread_concurrency", 13.0)
            .with("innodb_spin_wait_delay", 0.0)
            .with("innodb_lru_scan_depth", 356.0);
        let tuned_perf = evaluate_raw(InstanceType::A, &w, &tuned);
        assert!(
            default.cpu_pct > 2.0 * tuned_perf.cpu_pct,
            "default {} vs tuned {}",
            default.cpu_pct,
            tuned_perf.cpu_pct
        );
        // And the tuned config must still meet the default's throughput.
        assert!(tuned_perf.tps >= 0.95 * default.tps);
    }

    #[test]
    fn throttling_concurrency_to_one_collapses_throughput() {
        let w = WorkloadSpec::sysbench();
        let throttled =
            Configuration::dba_default().with("innodb_thread_concurrency", 1.0);
        let perf = evaluate_raw(InstanceType::A, &w, &throttled);
        let default = default_eval(&w);
        assert!(perf.tps < 0.5 * default.tps, "throttled tps {} vs {}", perf.tps, default.tps);
        assert!(perf.cpu_pct < default.cpu_pct);
    }

    #[test]
    fn miss_ratio_decreases_with_buffer_pool() {
        let w = WorkloadSpec::tpcc();
        let small = Configuration::dba_default().with("innodb_buffer_pool_frac", 0.15);
        let large = Configuration::dba_default().with("innodb_buffer_pool_frac", 0.8);
        let ps = evaluate_raw(InstanceType::E, &w, &small);
        let pl = evaluate_raw(InstanceType::E, &w, &large);
        assert!(ps.miss_ratio > pl.miss_ratio);
        assert!(ps.mem_gb < pl.mem_gb);
    }

    #[test]
    fn table7_hit_ratio_calibration() {
        // TPC-C with a 16 GB pool over ~100 GB data should miss ≈ 5-7 %
        // (Table 7 reports hit 0.946 at 117 GB, pool ≈ 16 GB).
        let w = WorkloadSpec::tpcc_warehouses(1000);
        let config = Configuration::dba_default(); // pool = 0.5 * 32 GB on E? use D
        let perf = evaluate_raw(InstanceType::D, &w, &config); // pool = 16 GB
        let hit = 1.0 - perf.miss_ratio;
        assert!(
            (0.90..0.99).contains(&hit),
            "hit ratio {hit} out of the Table 7 ballpark"
        );
    }

    #[test]
    fn spin_knobs_trade_cpu_for_latency() {
        let w = WorkloadSpec::twitter();
        let spinny = Configuration::dba_default()
            .with("innodb_spin_wait_delay", 60.0)
            .with("innodb_sync_spin_loops", 80.0);
        let sleepy = Configuration::dba_default()
            .with("innodb_spin_wait_delay", 0.0)
            .with("innodb_sync_spin_loops", 0.0);
        let ps = evaluate_raw(InstanceType::A, &w, &spinny);
        let pl = evaluate_raw(InstanceType::A, &w, &sleepy);
        assert!(ps.cpu_pct > pl.cpu_pct, "spin {} sleep {}", ps.cpu_pct, pl.cpu_pct);
        assert!(ps.svc_ms < pl.svc_ms, "spin {} sleep {}", ps.svc_ms, pl.svc_ms);
    }

    #[test]
    fn small_redo_log_creates_checkpoint_pressure() {
        let w = WorkloadSpec::tpcc();
        let small = Configuration::dba_default().with("innodb_log_file_size_mb", 64.0);
        let large = Configuration::dba_default().with("innodb_log_file_size_mb", 4096.0);
        let ps = evaluate_raw(InstanceType::A, &w, &small);
        let pl = evaluate_raw(InstanceType::A, &w, &large);
        assert!(ps.checkpoint_pressure > pl.checkpoint_pressure);
        assert!(ps.flush_eagerness > pl.flush_eagerness);
        assert!(ps.write_iops > pl.write_iops);
    }

    #[test]
    fn lazy_flushing_reduces_write_io() {
        let w = WorkloadSpec::sysbench();
        let lazy = Configuration::dba_default()
            .with("innodb_max_dirty_pages_pct", 95.0)
            .with("innodb_max_dirty_pages_pct_lwm", 0.0)
            .with("innodb_log_file_size_mb", 4096.0)
            .with("innodb_flush_neighbors", 0.0)
            .with("innodb_doublewrite", 0.0);
        let pd = default_eval(&w);
        let pl = evaluate_raw(InstanceType::A, &w, &lazy);
        assert!(
            pl.write_iops < 0.6 * pd.write_iops,
            "lazy {} vs default {}",
            pl.write_iops,
            pd.write_iops
        );
    }

    #[test]
    fn durability_knobs_cost_latency_and_log_iops() {
        let w = WorkloadSpec::tpcc();
        let durable = Configuration::dba_default()
            .with("innodb_flush_log_at_trx_commit", 1.0)
            .with("sync_binlog", 1.0);
        let relaxed = Configuration::dba_default()
            .with("innodb_flush_log_at_trx_commit", 2.0)
            .with("sync_binlog", 0.0);
        let pd = evaluate_raw(InstanceType::A, &w, &durable);
        let pr = evaluate_raw(InstanceType::A, &w, &relaxed);
        assert!(pd.p99_ms > pr.p99_ms);
        assert!(pd.log_iops > pr.log_iops);
    }

    #[test]
    fn memory_knobs_shrink_memory() {
        let w = WorkloadSpec::sysbench().with_data_gb(30.0);
        let lean = Configuration::dba_default()
            .with("innodb_buffer_pool_frac", 0.2)
            .with("sort_buffer_size_kb", 256.0)
            .with("join_buffer_size_kb", 256.0)
            .with("read_buffer_size_kb", 64.0)
            .with("tmp_table_size_mb", 16.0)
            .with("key_buffer_size_mb", 8.0);
        let pd = evaluate_raw(InstanceType::E, &w, &Configuration::dba_default());
        let pl = evaluate_raw(InstanceType::E, &w, &lean);
        assert!(pl.mem_gb < 0.7 * pd.mem_gb, "lean {} default {}", pl.mem_gb, pd.mem_gb);
    }

    #[test]
    fn closed_loop_workloads_follow_interactive_law() {
        let w = WorkloadSpec::hotel();
        let perf = default_eval(&w);
        // tps ≈ threads / (svc + think); should be within 2x of the think-only bound.
        let bound = w.threads as f64 / (w.think_time_ms / 1000.0);
        assert!(perf.tps <= bound);
        assert!(perf.tps > 0.2 * bound, "tps {} vs bound {}", perf.tps, bound);
    }

    #[test]
    fn hardware_rescales_the_surface() {
        // The same workload is far more contended on 8 cores than on 48.
        let w = WorkloadSpec::sysbench();
        let pa = evaluate_raw(InstanceType::A, &w, &Configuration::dba_default());
        let pb = evaluate_raw(InstanceType::B, &w, &Configuration::dba_default());
        assert!(pb.contention_multiplier > pa.contention_multiplier);
    }

    #[test]
    fn model_is_deterministic() {
        let w = WorkloadSpec::tpcc();
        let c = Configuration::dba_default().with("innodb_io_capacity", 7000.0);
        let a = evaluate_raw(InstanceType::D, &w, &c);
        let b = evaluate_raw(InstanceType::D, &w, &c);
        assert_eq!(a, b);
    }

    #[test]
    fn outputs_are_finite_and_positive_across_corners() {
        // Exercise extreme corners of the space for numeric robustness.
        let reg = crate::knobs::KnobRegistry::mysql();
        for corner in [0.0, 0.5, 1.0] {
            let mut config = Configuration::dba_default();
            for k in reg.iter() {
                let v = k.denormalize(corner);
                config.set(k.name, v);
            }
            for w in WorkloadSpec::evaluation_suite() {
                for inst in InstanceType::ALL {
                    let p = evaluate_raw(inst, &w, &config);
                    assert!(p.tps.is_finite() && p.tps > 0.0, "{} {:?}", w.name, inst);
                    assert!(p.cpu_pct.is_finite() && p.cpu_pct > 0.0);
                    assert!(p.p99_ms.is_finite() && p.p99_ms > 0.0);
                    assert!(p.mem_gb.is_finite() && p.mem_gb > 0.0);
                    assert!(p.io_mbps.is_finite() && p.io_mbps >= 0.0);
                }
            }
        }
    }
}
