//! One pinning test per modeled knob mechanism: if a knob stops doing what
//! the model docs claim, these fail. (The tuning results in `bench` all rest
//! on these effect directions.)

use dbsim::{Configuration, InstanceType, SimulatedDbms, WorkloadSpec};

fn eval(w: &WorkloadSpec, config: &Configuration) -> dbsim::Observation {
    SimulatedDbms::new(InstanceType::A, w.clone(), 0).with_noise(0.0).evaluate_noiseless(config)
}

fn base() -> Configuration {
    Configuration::dba_default()
}

#[test]
fn table_open_cache_too_small_burns_cpu() {
    let w = WorkloadSpec::sysbench(); // 150 tables
    let starved = base().with("table_open_cache", 1.0);
    let ample = base().with("table_open_cache", 4000.0);
    assert!(
        eval(&w, &starved).resources.cpu_pct > eval(&w, &ample).resources.cpu_pct + 1.0,
        "cache starvation must cost CPU"
    );
}

#[test]
fn thread_concurrency_has_an_interior_optimum() {
    let w = WorkloadSpec::twitter(); // 512 threads on 48 cores
    let throttled = eval(&w, &base().with("innodb_thread_concurrency", 2.0));
    let moderate = eval(&w, &base().with("innodb_thread_concurrency", 24.0));
    let unlimited = eval(&w, &base().with("innodb_thread_concurrency", 0.0));
    // Throttled: cheap but breaks throughput. Unlimited: meets tps but burns
    // CPU. Moderate: meets tps at a fraction of the CPU.
    assert!(throttled.tps < 0.5 * moderate.tps);
    assert!(moderate.tps > 0.99 * unlimited.tps);
    assert!(moderate.resources.cpu_pct < 0.5 * unlimited.resources.cpu_pct);
}

#[test]
fn adaptive_hash_index_helps_reads_hurts_writes() {
    let read_heavy = WorkloadSpec::twitter();
    let write_heavy = WorkloadSpec::sysbench().with_rw_ratio(1.0, 1.0);
    let on = base().with("innodb_adaptive_hash_index", 1.0);
    let off = base().with("innodb_adaptive_hash_index", 0.0);
    // For write-heavy mixes, AHI maintenance costs CPU.
    let w_on = eval(&write_heavy, &on).resources.cpu_pct;
    let w_off = eval(&write_heavy, &off).resources.cpu_pct;
    assert!(w_off < w_on, "AHI off should save CPU on write-heavy ({w_off} vs {w_on})");
    // For read-heavy mixes the lookup saving dominates or at least offsets.
    let dbms = SimulatedDbms::new(InstanceType::A, read_heavy, 0).with_noise(0.0);
    let r_on = dbms.breakdown(&on);
    let r_off = dbms.breakdown(&off);
    // Compare foreground work excluding lock-probability interactions: the
    // read-side saving shows up in per-transaction CPU.
    assert!(
        r_on.cpu_us_per_txn < r_off.cpu_us_per_txn * 1.25,
        "AHI must not be purely harmful for read-heavy mixes"
    );
}

#[test]
fn page_cleaner_depth_trades_background_cpu() {
    let w = WorkloadSpec::twitter();
    let deep = eval(&w, &base().with("innodb_lru_scan_depth", 8192.0));
    let shallow = eval(&w, &base().with("innodb_lru_scan_depth", 100.0));
    assert!(deep.resources.cpu_pct > shallow.resources.cpu_pct + 2.0);
}

#[test]
fn purge_and_io_threads_cost_background_cpu() {
    let w = WorkloadSpec::twitter();
    let many = eval(
        &w,
        &base()
            .with("innodb_purge_threads", 8.0)
            .with("innodb_read_io_threads", 16.0)
            .with("innodb_write_io_threads", 16.0),
    );
    let few = eval(
        &w,
        &base()
            .with("innodb_purge_threads", 1.0)
            .with("innodb_read_io_threads", 2.0)
            .with("innodb_write_io_threads", 2.0),
    );
    assert!(many.resources.cpu_pct > few.resources.cpu_pct + 1.0);
}

#[test]
fn thread_cache_misses_cost_cpu_on_high_connection_counts() {
    let w = WorkloadSpec::twitter(); // 512 connections
    let cold = eval(&w, &base().with("thread_cache_size", 0.0));
    let warm = eval(&w, &base().with("thread_cache_size", 512.0));
    assert!(cold.resources.cpu_pct > warm.resources.cpu_pct + 1.0);
}

#[test]
fn low_concurrency_tickets_cost_requeue_cpu() {
    let w = WorkloadSpec::tpcc();
    let low =
        eval(&w, &base().with("innodb_thread_concurrency", 32.0).with("innodb_concurrency_tickets", 1.0));
    let high = eval(
        &w,
        &base().with("innodb_thread_concurrency", 32.0).with("innodb_concurrency_tickets", 8000.0),
    );
    assert!(low.resources.cpu_pct > high.resources.cpu_pct);
}

#[test]
fn read_ahead_knobs_inflate_read_io() {
    let w = WorkloadSpec::tpcc().with_data_gb(100.0);
    let eager = eval(
        &w,
        &base().with("innodb_random_read_ahead", 1.0).with("innodb_read_ahead_threshold", 0.0),
    );
    let off = eval(
        &w,
        &base().with("innodb_random_read_ahead", 0.0).with("innodb_read_ahead_threshold", 64.0),
    );
    assert!(eager.resources.iops > off.resources.iops * 1.1);
}

#[test]
fn doublewrite_and_neighbors_amplify_write_bandwidth() {
    let w = WorkloadSpec::sysbench().with_data_gb(30.0);
    let amplified = eval(
        &w,
        &base().with("innodb_doublewrite", 1.0).with("innodb_flush_neighbors", 2.0),
    );
    let lean = eval(
        &w,
        &base().with("innodb_doublewrite", 0.0).with("innodb_flush_neighbors", 0.0),
    );
    assert!(amplified.resources.io_mbps > lean.resources.io_mbps * 1.2);
}

#[test]
fn relaxed_durability_cuts_log_iops_but_raises_no_latency() {
    let w = WorkloadSpec::tpcc();
    let strict = eval(&w, &base().with("innodb_flush_log_at_trx_commit", 1.0).with("sync_binlog", 1.0));
    let relaxed =
        eval(&w, &base().with("innodb_flush_log_at_trx_commit", 0.0).with("sync_binlog", 0.0));
    assert!(relaxed.resources.iops < strict.resources.iops);
    assert!(relaxed.p99_ms <= strict.p99_ms);
}

#[test]
fn bigger_redo_log_reduces_write_io() {
    let w = WorkloadSpec::sysbench();
    let small = eval(&w, &base().with("innodb_log_file_size_mb", 64.0));
    let large = eval(&w, &base().with("innodb_log_file_size_mb", 4096.0));
    assert!(small.resources.io_mbps > large.resources.io_mbps * 1.05);
}

#[test]
fn per_connection_buffers_dominate_memory_at_high_thread_counts() {
    let w = WorkloadSpec::twitter(); // 512 connections
    let fat = eval(
        &w,
        &base()
            .with("sort_buffer_size_kb", 65536.0)
            .with("join_buffer_size_kb", 65536.0)
            .with("read_buffer_size_kb", 16384.0),
    );
    let slim = eval(
        &w,
        &base()
            .with("sort_buffer_size_kb", 64.0)
            .with("join_buffer_size_kb", 128.0)
            .with("read_buffer_size_kb", 8.0),
    );
    assert!(fat.resources.mem_gb > slim.resources.mem_gb + 10.0);
}

#[test]
fn old_blocks_pct_has_a_workload_dependent_optimum() {
    // Scan-heavy Sales prefers a larger old sublist than point-read Twitter.
    let probe = |w: &WorkloadSpec, pct: f64| {
        SimulatedDbms::new(InstanceType::A, w.clone(), 0)
            .with_noise(0.0)
            .breakdown(&base().with("innodb_old_blocks_pct", pct))
            .miss_ratio
    };
    let sales = WorkloadSpec::sales();
    let twitter = WorkloadSpec::twitter();
    // Twitter's optimum sits low; Sales' higher.
    assert!(probe(&twitter, 10.0) <= probe(&twitter, 70.0));
    assert!(probe(&sales, 35.0) <= probe(&sales, 5.0));
}
