//! Property tests on the knob encoding itself, exercised over the *full*
//! 200-knob registry (not just the paper's pre-selected subsets): every
//! registered knob's normalize/denormalize pair must be a projection onto its
//! discrete domain, and exact values of discrete knobs must survive a round
//! trip bit-for-bit. The space-transform layer (`core::space`) leans on these
//! invariants — quantization assumes bin-center idempotence and hybrid
//! sentinels assume `normalize` is exact on in-range values.

use dbsim::{Configuration, KnobKind, KnobRegistry, KnobSet};
use propcheck::{check, Config};

#[test]
fn denormalize_is_a_projection_for_every_registered_knob() {
    // denormalize(normalize(denormalize(u))) == denormalize(u), exactly:
    // applying the encoding twice never moves a value. Covers all 200 knobs
    // and all four kinds each case.
    check(
        "denormalize_is_a_projection_for_every_registered_knob",
        Config::default().cases(64).seed(0xD_B010),
        |g| {
            let reg = KnobRegistry::mysql();
            for i in 0..reg.len() {
                let k = reg.knob(i);
                let u = g.unit();
                let v = k.denormalize(u);
                let v2 = k.denormalize(k.normalize(v));
                propcheck::prop_assert!(v == v2, "{}: {v} moved to {v2}", k.name);
                propcheck::prop_assert!(
                    (k.min..=k.max).contains(&v) || matches!(k.kind, KnobKind::Enum(_)),
                    "{}: {v} outside [{}, {}]",
                    k.name,
                    k.min,
                    k.max
                );
                match k.kind {
                    KnobKind::Integer => {
                        propcheck::prop_assert!(v.fract() == 0.0, "{}: non-integer {v}", k.name)
                    }
                    KnobKind::Boolean => {
                        propcheck::prop_assert!(v == 0.0 || v == 1.0, "{}: {v}", k.name)
                    }
                    KnobKind::Enum(n) => propcheck::prop_assert!(
                        v.fract() == 0.0 && v >= 0.0 && v < n as f64,
                        "{}: enum value {v} outside 0..{n}",
                        k.name
                    ),
                    KnobKind::Float => {}
                }
            }
            Ok(())
        },
    );
}

#[test]
fn integer_and_enum_values_roundtrip_exactly_over_the_full_registry() {
    // For every discrete knob, an arbitrary *in-domain* value must come back
    // unchanged from normalize ∘ denormalize. This is what makes discrete
    // knobs recoverable from unit-cube coordinates regardless of which set
    // (cpu/io/memory/extended) exposes them.
    check(
        "integer_and_enum_values_roundtrip_exactly_over_the_full_registry",
        Config::default().cases(64).seed(0xD_B011),
        |g| {
            let reg = KnobRegistry::mysql();
            for i in 0..reg.len() {
                let k = reg.knob(i);
                let value = match k.kind {
                    KnobKind::Integer => (k.min + g.unit() * (k.max - k.min)).round(),
                    KnobKind::Enum(n) => g.usize_in(0, n as usize - 1) as f64,
                    KnobKind::Boolean => {
                        if g.unit() < 0.5 {
                            0.0
                        } else {
                            1.0
                        }
                    }
                    KnobKind::Float => continue,
                };
                let back = k.denormalize(k.normalize(value));
                propcheck::prop_assert!(
                    back == value,
                    "{} ({:?}): {value} round-tripped to {back}",
                    k.name,
                    k.kind
                );
            }
            Ok(())
        },
    );
}

#[test]
fn extended_set_configuration_roundtrip_is_a_fixpoint() {
    // Set-level version over the full 200-dim extended set: a configuration
    // materialized from unit coordinates reaches a fixpoint after one
    // normalize → to_configuration cycle.
    check(
        "extended_set_configuration_roundtrip_is_a_fixpoint",
        Config::default().cases(24).seed(0xD_B012),
        |g| {
            let set = KnobSet::extended();
            let units: Vec<f64> = (0..set.dim()).map(|_| g.unit()).collect();
            let config = set.to_configuration(&units, &Configuration::dba_default());
            let back = set.normalize(&config);
            let config2 = set.to_configuration(&back, &Configuration::dba_default());
            for name in set.names() {
                propcheck::prop_assert!(config.get(name) == config2.get(name), "{name}");
            }
            Ok(())
        },
    );
}
