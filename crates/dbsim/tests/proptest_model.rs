//! Property-based tests on the simulator: determinism, encoding round-trips,
//! physical sanity, and the monotonicities the tuning results depend on.
//!
//! Runs on the in-tree `propcheck` harness with fixed suite seeds.

use dbsim::{Configuration, InstanceType, KnobRegistry, KnobSet, SimulatedDbms, WorkloadSpec};
use propcheck::{check, Config, Gen};

/// Draws an arbitrary configuration by denormalizing a uniform unit vector
/// across every registered knob — the same space the old proptest strategy
/// covered.
fn draw_config(g: &mut Gen) -> Configuration {
    let reg = KnobRegistry::mysql();
    let mut config = Configuration::dba_default();
    for i in 0..reg.len() {
        let k = reg.knob(i);
        let u = g.unit();
        config.set(k.name, k.denormalize(u));
    }
    config
}

fn draw_instance(g: &mut Gen) -> InstanceType {
    InstanceType::ALL[g.usize_in(0, InstanceType::ALL.len() - 1)]
}

fn draw_workload(g: &mut Gen) -> WorkloadSpec {
    let suite = WorkloadSpec::evaluation_suite();
    suite[g.usize_in(0, suite.len() - 1)].clone()
}

#[test]
fn outputs_are_finite_and_physical() {
    check("outputs_are_finite_and_physical", Config::default().cases(48).seed(0xD_B001), |g| {
        let config = draw_config(g);
        let instance = draw_instance(g);
        let workload = draw_workload(g);
        let dbms = SimulatedDbms::new(instance, workload, 0).with_noise(0.0);
        let obs = dbms.evaluate_noiseless(&config);
        propcheck::prop_assert!(obs.tps.is_finite() && obs.tps > 0.0);
        propcheck::prop_assert!(obs.p99_ms.is_finite() && obs.p99_ms > 0.0);
        propcheck::prop_assert!((0.0..=100.0).contains(&obs.resources.cpu_pct));
        propcheck::prop_assert!(obs.resources.mem_gb > 0.0);
        propcheck::prop_assert!(obs.resources.io_mbps >= 0.0);
        propcheck::prop_assert!(obs.resources.iops >= 0.0);
        // Internal metrics are finite too (OtterTune/CDBTune consume them).
        propcheck::prop_assert!(obs.internal.to_vec().iter().all(|v| v.is_finite()));
        Ok(())
    });
}

#[test]
fn model_is_deterministic_per_config() {
    check("model_is_deterministic_per_config", Config::default().cases(48).seed(0xD_B002), |g| {
        let config = draw_config(g);
        let instance = draw_instance(g);
        let w = WorkloadSpec::tpcc();
        let a = SimulatedDbms::new(instance, w.clone(), 3).with_noise(0.0);
        let b = SimulatedDbms::new(instance, w, 3).with_noise(0.0);
        propcheck::prop_assert_eq!(a.evaluate_noiseless(&config), b.evaluate_noiseless(&config));
        Ok(())
    });
}

#[test]
fn knob_encoding_roundtrips() {
    check("knob_encoding_roundtrips", Config::default().cases(48).seed(0xD_B003), |g| {
        // normalize(denormalize(u)) must land in the same discrete cell.
        let units = g.vec_f64(14, 0.0, 1.0);
        let set = KnobSet::cpu();
        let config = set.to_configuration(&units, &Configuration::dba_default());
        let back = set.normalize(&config);
        let config2 = set.to_configuration(&back, &Configuration::dba_default());
        for name in set.names() {
            propcheck::prop_assert_eq!(config.get(name), config2.get(name));
        }
        Ok(())
    });
}

#[test]
fn bigger_buffer_pool_never_increases_misses() {
    check(
        "bigger_buffer_pool_never_increases_misses",
        Config::default().cases(48).seed(0xD_B004),
        |g| {
            let frac_small = g.f64_in(0.10, 0.45);
            let delta = g.f64_in(0.05, 0.40);
            let workload = draw_workload(g);
            let small = Configuration::dba_default().with("innodb_buffer_pool_frac", frac_small);
            let large =
                Configuration::dba_default().with("innodb_buffer_pool_frac", frac_small + delta);
            let dbms = SimulatedDbms::new(InstanceType::E, workload, 0).with_noise(0.0);
            let ms = dbms.breakdown(&small).miss_ratio;
            let ml = dbms.breakdown(&large).miss_ratio;
            propcheck::prop_assert!(ml <= ms + 1e-12, "pool grew but misses rose: {ms} -> {ml}");
            Ok(())
        },
    );
}

#[test]
fn throughput_never_exceeds_offered_rate() {
    check("throughput_never_exceeds_offered_rate", Config::default().cases(48).seed(0xD_B005), |g| {
        let config = draw_config(g);
        let instance = draw_instance(g);
        let w = WorkloadSpec::sysbench();
        let dbms = SimulatedDbms::new(instance, w.clone(), 0).with_noise(0.0);
        let obs = dbms.evaluate_noiseless(&config);
        propcheck::prop_assert!(obs.tps <= w.request_rate.unwrap() * 1.001);
        Ok(())
    });
}

#[test]
fn more_spinning_never_lowers_cpu() {
    check("more_spinning_never_lowers_cpu", Config::default().cases(48).seed(0xD_B006), |g| {
        // Spin knobs monotonically trade CPU for wait latency.
        let spin_lo = g.f64_in(0.0, 40.0);
        let extra = g.f64_in(10.0, 80.0);
        let base = Configuration::dba_default();
        let lo = base.clone().with("innodb_spin_wait_delay", spin_lo);
        let hi = base.with("innodb_spin_wait_delay", spin_lo + extra);
        let dbms = SimulatedDbms::new(InstanceType::A, WorkloadSpec::twitter(), 0).with_noise(0.0);
        let cl = dbms.breakdown(&lo).cpu_us_per_txn;
        let ch = dbms.breakdown(&hi).cpu_us_per_txn;
        propcheck::prop_assert!(ch >= cl - 1e-9, "spin up, cpu down: {cl} -> {ch}");
        Ok(())
    });
}

#[test]
fn noise_is_bounded_and_seed_reproducible() {
    check(
        "noise_is_bounded_and_seed_reproducible",
        Config::default().cases(48).seed(0xD_B007),
        |g| {
            let seed = g.i64_in(0, 999) as u64;
            let w = WorkloadSpec::hotel();
            let mut a = SimulatedDbms::new(InstanceType::A, w.clone(), seed);
            let mut b = SimulatedDbms::new(InstanceType::A, w.clone(), seed);
            let truth = a.evaluate_noiseless(&Configuration::dba_default());
            let oa = a.evaluate(&Configuration::dba_default());
            let ob = b.evaluate(&Configuration::dba_default());
            propcheck::prop_assert_eq!(&oa, &ob);
            let rel = (oa.tps - truth.tps).abs() / truth.tps;
            propcheck::prop_assert!(rel < 0.15, "noise too large: {}", rel);
            Ok(())
        },
    );
}
