//! Property-based tests on the simulator: determinism, encoding round-trips,
//! physical sanity, and the monotonicities the tuning results depend on.

use dbsim::{Configuration, InstanceType, KnobRegistry, KnobSet, SimulatedDbms, WorkloadSpec};
use proptest::prelude::*;

fn arbitrary_config() -> impl Strategy<Value = Configuration> {
    let n = KnobRegistry::mysql().len();
    prop::collection::vec(0.0..1.0f64, n).prop_map(|units| {
        let reg = KnobRegistry::mysql();
        let mut config = Configuration::dba_default();
        for (i, u) in units.iter().enumerate() {
            let k = reg.knob(i);
            config.set(k.name, k.denormalize(*u));
        }
        config
    })
}

fn any_instance() -> impl Strategy<Value = InstanceType> {
    prop::sample::select(InstanceType::ALL.to_vec())
}

fn any_workload() -> impl Strategy<Value = WorkloadSpec> {
    prop::sample::select(WorkloadSpec::evaluation_suite())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn outputs_are_finite_and_physical(
        config in arbitrary_config(),
        instance in any_instance(),
        workload in any_workload(),
    ) {
        let dbms = SimulatedDbms::new(instance, workload, 0).with_noise(0.0);
        let obs = dbms.evaluate_noiseless(&config);
        prop_assert!(obs.tps.is_finite() && obs.tps > 0.0);
        prop_assert!(obs.p99_ms.is_finite() && obs.p99_ms > 0.0);
        prop_assert!((0.0..=100.0).contains(&obs.resources.cpu_pct));
        prop_assert!(obs.resources.mem_gb > 0.0);
        prop_assert!(obs.resources.io_mbps >= 0.0);
        prop_assert!(obs.resources.iops >= 0.0);
        // Internal metrics are finite too (OtterTune/CDBTune consume them).
        prop_assert!(obs.internal.to_vec().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn model_is_deterministic_per_config(
        config in arbitrary_config(),
        instance in any_instance(),
    ) {
        let w = WorkloadSpec::tpcc();
        let a = SimulatedDbms::new(instance, w.clone(), 3).with_noise(0.0);
        let b = SimulatedDbms::new(instance, w, 3).with_noise(0.0);
        prop_assert_eq!(a.evaluate_noiseless(&config), b.evaluate_noiseless(&config));
    }

    #[test]
    fn knob_encoding_roundtrips(units in prop::collection::vec(0.0..1.0f64, 14)) {
        // normalize(denormalize(u)) must land in the same discrete cell.
        let set = KnobSet::cpu();
        let config = set.to_configuration(&units, &Configuration::dba_default());
        let back = set.normalize(&config);
        let config2 = set.to_configuration(&back, &Configuration::dba_default());
        for name in set.names() {
            prop_assert_eq!(config.get(name), config2.get(name), "{}", name);
        }
    }

    #[test]
    fn bigger_buffer_pool_never_increases_misses(
        frac_small in 0.10..0.45f64,
        delta in 0.05..0.40f64,
        workload in any_workload(),
    ) {
        let small = Configuration::dba_default().with("innodb_buffer_pool_frac", frac_small);
        let large =
            Configuration::dba_default().with("innodb_buffer_pool_frac", frac_small + delta);
        let dbms = SimulatedDbms::new(InstanceType::E, workload, 0).with_noise(0.0);
        let ms = dbms.breakdown(&small).miss_ratio;
        let ml = dbms.breakdown(&large).miss_ratio;
        prop_assert!(ml <= ms + 1e-12, "pool grew but misses rose: {ms} -> {ml}");
    }

    #[test]
    fn throughput_never_exceeds_offered_rate(
        config in arbitrary_config(),
        instance in any_instance(),
    ) {
        let w = WorkloadSpec::sysbench();
        let dbms = SimulatedDbms::new(instance, w.clone(), 0).with_noise(0.0);
        let obs = dbms.evaluate_noiseless(&config);
        prop_assert!(obs.tps <= w.request_rate.unwrap() * 1.001);
    }

    #[test]
    fn more_spinning_never_lowers_cpu(
        spin_lo in 0.0..40.0f64,
        extra in 10.0..80.0f64,
    ) {
        // Spin knobs monotonically trade CPU for wait latency.
        let base = Configuration::dba_default();
        let lo = base.clone().with("innodb_spin_wait_delay", spin_lo);
        let hi = base.with("innodb_spin_wait_delay", spin_lo + extra);
        let dbms = SimulatedDbms::new(InstanceType::A, WorkloadSpec::twitter(), 0)
            .with_noise(0.0);
        let cl = dbms.breakdown(&lo).cpu_us_per_txn;
        let ch = dbms.breakdown(&hi).cpu_us_per_txn;
        prop_assert!(ch >= cl - 1e-9, "spin up, cpu down: {cl} -> {ch}");
    }

    #[test]
    fn noise_is_bounded_and_seed_reproducible(seed in 0u64..1000) {
        let w = WorkloadSpec::hotel();
        let mut a = SimulatedDbms::new(InstanceType::A, w.clone(), seed);
        let mut b = SimulatedDbms::new(InstanceType::A, w.clone(), seed);
        let truth = a.evaluate_noiseless(&Configuration::dba_default());
        let oa = a.evaluate(&Configuration::dba_default());
        let ob = b.evaluate(&Configuration::dba_default());
        prop_assert_eq!(&oa, &ob);
        let rel = (oa.tps - truth.tps).abs() / truth.tps;
        prop_assert!(rel < 0.15, "noise too large: {}", rel);
    }
}
