//! Structured tracing + metrics for the tuning stack (DESIGN.md §10).
//!
//! Three primitives feed one global, thread-safe, in-memory collector:
//!
//! - **Spans** — nested wall-clock timers with slash-joined paths
//!   (`iteration/model_update/gp_fit`). Nesting is tracked per thread; a
//!   [`TraceContext`] carries the ambient path onto `std::thread::scope`
//!   workers so parallel stages aggregate under their logical parent.
//! - **Counters** — monotone `u64` tallies (`dbsim.evals`, `replay.retries`).
//! - **Histograms** — `{count, sum, min, max}` summaries of `f64` samples
//!   (`replay.sim_s`).
//!
//! The collector is **disabled by default** and costs one relaxed atomic
//! load per call site when off. [`Span::finish_s`] always returns the
//! measured duration — callers such as `IterationTiming` consume the number
//! whether or not an event is recorded — so instrumentation replaces, rather
//! than duplicates, ad-hoc `Instant::now()` pairs.
//!
//! Tracing must never perturb tuning: it reads clocks, not RNG streams or
//! observations, so same-seed runs are bit-identical with tracing on or off
//! (`tests/determinism.rs` proves it).
//!
//! Snapshots serialize to JSONL (one event per line) via `minjson` and parse
//! back losslessly; `restune-bench`'s `trace_report` renders them.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Instant;

use minjson::Json;

// ---------------------------------------------------------------------------
// Global collector
// ---------------------------------------------------------------------------

static ENABLED: AtomicBool = AtomicBool::new(false);

fn collector() -> MutexGuard<'static, Collector> {
    static COLLECTOR: OnceLock<Mutex<Collector>> = OnceLock::new();
    let lock = COLLECTOR.get_or_init(|| Mutex::new(Collector::default()));
    // A panic while holding the lock only poisons diagnostics; keep going.
    lock.lock().unwrap_or_else(|e| e.into_inner())
}

#[derive(Default)]
struct Collector {
    spans: Vec<SpanEvent>,
    counters: BTreeMap<&'static str, u64>,
    hists: BTreeMap<&'static str, Hist>,
}

/// Turns event recording on.
pub fn enable() {
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turns event recording off (buffered events are kept until [`reset`]).
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// Whether events are currently recorded.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Enables tracing when `RESTUNE_TRACE` is set to `1`, `true`, or `on`.
pub fn init_from_env() {
    if let Ok(v) = std::env::var("RESTUNE_TRACE") {
        if matches!(v.as_str(), "1" | "true" | "on") {
            enable();
        }
    }
}

/// Clears all buffered events, counters, and histograms.
pub fn reset() {
    let mut c = collector();
    c.spans.clear();
    c.counters.clear();
    c.hists.clear();
}

// ---------------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------------

thread_local! {
    static PATH_STACK: std::cell::RefCell<Vec<&'static str>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

fn joined_path(stack: &[&'static str]) -> String {
    stack.join("/")
}

/// One finished span occurrence.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanEvent {
    /// Slash-joined nesting path, e.g. `iteration/model_update/gp_fit`.
    pub path: String,
    /// Measured monotonic wall-clock duration, seconds.
    pub dur_s: f64,
    /// Optional numeric annotations (`learner`, `iter`, …).
    pub fields: Vec<(String, f64)>,
}

/// A live span. Create with [`span!`]; close with [`Span::finish_s`] to get
/// the duration, or let it drop to record without reading the value.
pub struct Span {
    start: Instant,
    // `Some` iff tracing was enabled at creation (the path segment was pushed
    // onto this thread's stack and must be popped exactly once).
    rec: Option<SpanRec>,
}

struct SpanRec {
    path: String,
    fields: Vec<(String, f64)>,
}

impl Span {
    /// Starts a span named `name` nested under this thread's current path.
    pub fn new(name: &'static str) -> Span {
        let rec = if enabled() {
            let path = PATH_STACK.with(|s| {
                let mut s = s.borrow_mut();
                s.push(name);
                joined_path(&s)
            });
            Some(SpanRec { path, fields: Vec::new() })
        } else {
            None
        };
        Span { start: Instant::now(), rec }
    }

    /// Attaches a numeric field (no-op when tracing is disabled).
    pub fn with_field(mut self, key: &'static str, value: f64) -> Span {
        if let Some(rec) = &mut self.rec {
            rec.fields.push((key.to_string(), value));
        }
        self
    }

    /// Stops the clock, records the event (when enabled at creation), and
    /// returns the elapsed seconds. Always measures, even when disabled.
    pub fn finish_s(mut self) -> f64 {
        let dur_s = self.start.elapsed().as_secs_f64();
        self.close(dur_s);
        dur_s
    }

    fn close(&mut self, dur_s: f64) {
        if let Some(rec) = self.rec.take() {
            PATH_STACK.with(|s| {
                s.borrow_mut().pop();
            });
            collector().spans.push(SpanEvent { path: rec.path, dur_s, fields: rec.fields });
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let dur_s = self.start.elapsed().as_secs_f64();
        self.close(dur_s);
    }
}

/// Starts a [`Span`]: `span!("gp_fit")` or `span!("gp_fit", learner = i)`.
/// Fields are evaluated and cast with `as f64`.
#[macro_export]
macro_rules! span {
    ($name:literal) => {
        $crate::Span::new($name)
    };
    ($name:literal $(, $key:ident = $val:expr)+ $(,)?) => {
        $crate::Span::new($name)$(.with_field(stringify!($key), ($val) as f64))+
    };
}

// ---------------------------------------------------------------------------
// Cross-thread context propagation
// ---------------------------------------------------------------------------

/// The ambient span path of the capturing thread, for hand-off to
/// `std::thread::scope` workers: capture with [`current_context`] before
/// spawning, call [`TraceContext::enter`] inside the closure, and spans
/// created by the worker nest under the capturing thread's path.
#[derive(Debug, Clone, Default)]
pub struct TraceContext {
    stack: Vec<&'static str>,
}

/// Captures the current thread's span path (empty when tracing is disabled,
/// so disabled runs pay only the atomic load).
pub fn current_context() -> TraceContext {
    if !enabled() {
        return TraceContext::default();
    }
    TraceContext { stack: PATH_STACK.with(|s| s.borrow().clone()) }
}

impl TraceContext {
    /// Installs this context on the current thread until the guard drops.
    pub fn enter(&self) -> ContextGuard {
        let prev = PATH_STACK.with(|s| std::mem::replace(&mut *s.borrow_mut(), self.stack.clone()));
        ContextGuard { prev }
    }
}

/// Restores the previous thread-local path on drop.
pub struct ContextGuard {
    prev: Vec<&'static str>,
}

impl Drop for ContextGuard {
    fn drop(&mut self) {
        let prev = std::mem::take(&mut self.prev);
        PATH_STACK.with(|s| *s.borrow_mut() = prev);
    }
}

// ---------------------------------------------------------------------------
// Counters + histograms
// ---------------------------------------------------------------------------

/// Adds `n` to counter `name`.
#[inline]
pub fn count(name: &'static str, n: u64) {
    if !enabled() {
        return;
    }
    *collector().counters.entry(name).or_insert(0) += n;
}

/// Records sample `v` into histogram `name` (non-finite samples dropped so
/// JSONL export never fails).
#[inline]
pub fn observe(name: &'static str, v: f64) {
    if !enabled() || !v.is_finite() {
        return;
    }
    collector().hists.entry(name).or_default().record(v);
}

/// A `{count, sum, min, max}` summary of observed samples.
#[derive(Debug, Clone, PartialEq)]
pub struct Hist {
    /// Samples recorded.
    pub count: u64,
    /// Sum of samples.
    pub sum: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
}

impl Default for Hist {
    fn default() -> Self {
        Hist { count: 0, sum: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }
}

impl Hist {
    fn record(&mut self, v: f64) {
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Mean sample, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 { 0.0 } else { self.sum / self.count as f64 }
    }
}

// ---------------------------------------------------------------------------
// Snapshots + JSONL
// ---------------------------------------------------------------------------

/// Per-path aggregate over a snapshot's span events.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpanAgg {
    /// Occurrences.
    pub count: u64,
    /// Total seconds across occurrences.
    pub total_s: f64,
    /// Shortest occurrence.
    pub min_s: f64,
    /// Longest occurrence.
    pub max_s: f64,
}

/// An owned copy of the collector's state, decoupled from later recording.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceSnapshot {
    /// Finished spans in completion order.
    pub spans: Vec<SpanEvent>,
    /// Counter totals by name.
    pub counters: BTreeMap<String, u64>,
    /// Histogram summaries by name.
    pub hists: BTreeMap<String, Hist>,
}

/// Copies the collector's current contents.
pub fn snapshot() -> TraceSnapshot {
    let c = collector();
    TraceSnapshot {
        spans: c.spans.clone(),
        counters: c.counters.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
        hists: c.hists.iter().map(|(k, v)| (k.to_string(), v.clone())).collect(),
    }
}

impl TraceSnapshot {
    /// Aggregates span events by path.
    pub fn span_agg(&self) -> BTreeMap<String, SpanAgg> {
        let mut out: BTreeMap<String, SpanAgg> = BTreeMap::new();
        for ev in &self.spans {
            let agg = out.entry(ev.path.clone()).or_insert(SpanAgg {
                count: 0,
                total_s: 0.0,
                min_s: f64::INFINITY,
                max_s: f64::NEG_INFINITY,
            });
            agg.count += 1;
            agg.total_s += ev.dur_s;
            agg.min_s = agg.min_s.min(ev.dur_s);
            agg.max_s = agg.max_s.max(ev.dur_s);
        }
        out
    }

    /// Total seconds across every span whose **last** path segment is `leaf`
    /// (sums the same logical phase across nesting contexts, e.g. the
    /// tuner's `iteration/replay` and a baseline's root-level `replay`).
    pub fn total_for(&self, leaf: &str) -> f64 {
        // fold, not sum(): an empty f64 `sum()` is -0.0, which would render
        // absent phases as "-0.000" in the breakdown tables.
        self.spans
            .iter()
            .filter(|ev| ev.path.rsplit('/').next() == Some(leaf))
            .map(|ev| ev.dur_s)
            .fold(0.0, |acc, d| acc + d)
    }

    /// A counter's total (0 when never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// A histogram summary, if any samples were recorded.
    pub fn hist(&self, name: &str) -> Option<&Hist> {
        self.hists.get(name)
    }

    /// Serializes to JSONL: one `span`, `counter`, or `hist` object per line.
    pub fn to_jsonl(&self) -> Result<String, minjson::JsonError> {
        let mut out = String::new();
        for ev in &self.spans {
            let mut obj = vec![
                ("type".to_string(), Json::Str("span".to_string())),
                ("path".to_string(), Json::Str(ev.path.clone())),
                ("dur_s".to_string(), Json::Num(ev.dur_s)),
            ];
            if !ev.fields.is_empty() {
                let fields =
                    ev.fields.iter().map(|(k, v)| (k.clone(), Json::Num(*v))).collect();
                obj.push(("fields".to_string(), Json::Obj(fields)));
            }
            out.push_str(&Json::Obj(obj).render()?);
            out.push('\n');
        }
        for (name, value) in &self.counters {
            let obj = vec![
                ("type".to_string(), Json::Str("counter".to_string())),
                ("name".to_string(), Json::Str(name.clone())),
                ("value".to_string(), Json::Num(*value as f64)),
            ];
            out.push_str(&Json::Obj(obj).render()?);
            out.push('\n');
        }
        for (name, h) in &self.hists {
            let obj = vec![
                ("type".to_string(), Json::Str("hist".to_string())),
                ("name".to_string(), Json::Str(name.clone())),
                ("count".to_string(), Json::Num(h.count as f64)),
                ("sum".to_string(), Json::Num(h.sum)),
                ("min".to_string(), Json::Num(h.min)),
                ("max".to_string(), Json::Num(h.max)),
            ];
            out.push_str(&Json::Obj(obj).render()?);
            out.push('\n');
        }
        Ok(out)
    }

    /// Parses JSONL produced by [`TraceSnapshot::to_jsonl`].
    pub fn from_jsonl(text: &str) -> Result<TraceSnapshot, minjson::JsonError> {
        let mut snap = TraceSnapshot::default();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let v = Json::parse(line)
                .map_err(|e| minjson::JsonError::new(format!("line {}: {e}", lineno + 1)))?;
            let kind = v.field("type")?.as_str().unwrap_or_default().to_string();
            match kind.as_str() {
                "span" => {
                    let path = v.field("path")?.as_str().unwrap_or_default().to_string();
                    let dur_s = v.field("dur_s")?.as_f64().unwrap_or(0.0);
                    let mut fields = Vec::new();
                    if let Some(Json::Obj(fs)) = v.get("fields") {
                        for (k, fv) in fs {
                            fields.push((k.clone(), fv.as_f64().unwrap_or(0.0)));
                        }
                    }
                    snap.spans.push(SpanEvent { path, dur_s, fields });
                }
                "counter" => {
                    let name = v.field("name")?.as_str().unwrap_or_default().to_string();
                    let value = v.field("value")?.as_f64().unwrap_or(0.0) as u64;
                    snap.counters.insert(name, value);
                }
                "hist" => {
                    let name = v.field("name")?.as_str().unwrap_or_default().to_string();
                    snap.hists.insert(
                        name,
                        Hist {
                            count: v.field("count")?.as_f64().unwrap_or(0.0) as u64,
                            sum: v.field("sum")?.as_f64().unwrap_or(0.0),
                            min: v.field("min")?.as_f64().unwrap_or(0.0),
                            max: v.field("max")?.as_f64().unwrap_or(0.0),
                        },
                    );
                }
                other => {
                    return Err(minjson::JsonError::new(format!(
                        "line {}: unknown event type `{other}`",
                        lineno + 1
                    )));
                }
            }
        }
        Ok(snap)
    }

    /// Writes the JSONL rendering to `path`.
    pub fn write_jsonl(&self, path: &std::path::Path) -> std::io::Result<()> {
        let text = self
            .to_jsonl()
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        std::fs::write(path, text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The collector is process-global and Rust runs tests on parallel
    // threads; serialize every test that records events.
    fn lock() -> MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_records_nothing_but_still_measures() {
        let _g = lock();
        disable();
        reset();
        let sp = span!("quiet", x = 3);
        count("quiet.counter", 5);
        observe("quiet.hist", 1.0);
        assert!(sp.finish_s() >= 0.0);
        let snap = snapshot();
        assert!(snap.spans.is_empty());
        assert!(snap.counters.is_empty());
        assert!(snap.hists.is_empty());
    }

    #[test]
    fn spans_nest_into_slash_paths() {
        let _g = lock();
        enable();
        reset();
        {
            let outer = span!("outer");
            {
                let inner = span!("inner", k = 2);
                let _ = inner.finish_s();
            }
            let _ = outer.finish_s();
        }
        disable();
        let snap = snapshot();
        let paths: Vec<&str> = snap.spans.iter().map(|e| e.path.as_str()).collect();
        // Inner finishes first; both carry full nesting paths.
        assert_eq!(paths, vec!["outer/inner", "outer"]);
        assert_eq!(snap.spans[0].fields, vec![("k".to_string(), 2.0)]);
    }

    #[test]
    fn dropped_span_records_like_finish() {
        let _g = lock();
        enable();
        reset();
        {
            let _sp = span!("via_drop");
        }
        disable();
        assert_eq!(snapshot().span_agg()["via_drop"].count, 1);
    }

    #[test]
    fn context_propagates_paths_onto_scoped_threads() {
        let _g = lock();
        enable();
        reset();
        {
            let parent = span!("parent");
            let ctx = current_context();
            std::thread::scope(|scope| {
                for i in 0..3 {
                    let ctx = ctx.clone();
                    scope.spawn(move || {
                        let _guard = ctx.enter();
                        let sp = span!("child", worker = i);
                        let _ = sp.finish_s();
                    });
                }
            });
            let _ = parent.finish_s();
        }
        disable();
        let agg = snapshot().span_agg();
        assert_eq!(agg["parent/child"].count, 3);
        assert_eq!(agg["parent"].count, 1);
    }

    #[test]
    fn counters_and_hists_accumulate() {
        let _g = lock();
        enable();
        reset();
        count("c.a", 2);
        count("c.a", 3);
        observe("h.x", 1.5);
        observe("h.x", 0.5);
        observe("h.x", f64::NAN); // dropped
        disable();
        let snap = snapshot();
        assert_eq!(snap.counter("c.a"), 5);
        let h = snap.hist("h.x").unwrap();
        assert_eq!((h.count, h.sum, h.min, h.max), (2, 2.0, 0.5, 1.5));
        assert_eq!(h.mean(), 1.0);
    }

    #[test]
    fn jsonl_round_trip_preserves_everything() {
        let _g = lock();
        enable();
        reset();
        {
            let outer = span!("a", iter = 7);
            let inner = span!("b");
            let _ = inner.finish_s();
            let _ = outer.finish_s();
        }
        count("evals", 11);
        observe("sim_s", 123.456);
        disable();
        let snap = snapshot();
        let text = snap.to_jsonl().unwrap();
        let back = TraceSnapshot::from_jsonl(&text).unwrap();
        assert_eq!(back, snap);
        assert_eq!(back.span_agg(), snap.span_agg());
    }

    #[test]
    fn total_for_matches_leaf_segments_across_contexts() {
        let snap = TraceSnapshot {
            spans: vec![
                SpanEvent { path: "iteration/replay".into(), dur_s: 1.0, fields: vec![] },
                SpanEvent { path: "replay".into(), dur_s: 2.0, fields: vec![] },
                SpanEvent { path: "replay/inner".into(), dur_s: 4.0, fields: vec![] },
            ],
            ..Default::default()
        };
        assert_eq!(snap.total_for("replay"), 3.0);
    }
}
