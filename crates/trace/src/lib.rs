//! Structured tracing + metrics for the tuning stack (DESIGN.md §10).
//!
//! Three primitives feed one global, thread-safe, in-memory collector:
//!
//! - **Spans** — nested wall-clock timers with slash-joined paths
//!   (`iteration/model_update/gp_fit`). Nesting is tracked per thread; a
//!   [`TraceContext`] carries the ambient path onto `std::thread::scope`
//!   workers so parallel stages aggregate under their logical parent.
//! - **Counters** — monotone `u64` tallies (`dbsim.evals`, `replay.retries`).
//! - **Histograms** — `{count, sum, min, max}` summaries of `f64` samples
//!   (`replay.sim_s`).
//! - **Events** — typed, timestamp-free records with named f64/int/string
//!   fields (`tuner.health`), tagged with the ambient task like spans so one
//!   collector slices into per-tenant streams.
//!
//! The collector is **disabled by default** and costs one relaxed atomic
//! load per call site when off. [`Span::finish_s`] always returns the
//! measured duration — callers such as `IterationTiming` consume the number
//! whether or not an event is recorded — so instrumentation replaces, rather
//! than duplicates, ad-hoc `Instant::now()` pairs.
//!
//! Tracing must never perturb tuning: it reads clocks, not RNG streams or
//! observations, so same-seed runs are bit-identical with tracing on or off
//! (`tests/determinism.rs` proves it).
//!
//! Snapshots serialize to JSONL (one event per line) via `minjson` and parse
//! back losslessly; `restune-bench`'s `trace_report` renders them.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Instant;

use minjson::Json;

// ---------------------------------------------------------------------------
// Global collector
// ---------------------------------------------------------------------------

static ENABLED: AtomicBool = AtomicBool::new(false);

fn collector() -> MutexGuard<'static, Collector> {
    static COLLECTOR: OnceLock<Mutex<Collector>> = OnceLock::new();
    let lock = COLLECTOR.get_or_init(|| Mutex::new(Collector::default()));
    // A panic while holding the lock only poisons diagnostics; keep going.
    lock.lock().unwrap_or_else(|e| e.into_inner())
}

#[derive(Default)]
struct Collector {
    spans: Vec<SpanEvent>,
    counters: BTreeMap<&'static str, u64>,
    hists: BTreeMap<&'static str, Hist>,
    events: Vec<Event>,
}

/// Turns event recording on.
pub fn enable() {
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turns event recording off (buffered events are kept until [`reset`]).
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// Whether events are currently recorded.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Enables tracing when `RESTUNE_TRACE` is set to `1`, `true`, or `on`.
pub fn init_from_env() {
    if let Ok(v) = std::env::var("RESTUNE_TRACE") {
        if matches!(v.as_str(), "1" | "true" | "on") {
            enable();
        }
    }
}

/// Clears all buffered events, counters, and histograms.
pub fn reset() {
    let mut c = collector();
    c.spans.clear();
    c.counters.clear();
    c.hists.clear();
    c.events.clear();
}

// ---------------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------------

/// Per-thread span-nesting state. `generation` stamps the identity of the
/// stack currently installed: a [`Span`] pops its segment on close only if
/// the stamp (and depth) still match its creation, so a span that outlives
/// the context it was created in — held across a [`TraceContext::enter`]
/// guard, leaked by a panicking tenant, or simply forgotten — can never pop
/// a path segment it did not push. Without the guard, a pooled worker reused
/// across tasks would inherit the previous task's leftover parent path and
/// every later span would nest under it.
///
/// Fresh stamps are drawn from the monotonic `next_gen` counter;
/// [`ContextGuard`] *restores* the previous stamp on drop, so a balanced
/// same-thread `enter()`/drop pair (the serial GP-fit path re-enters its own
/// context) is transparent to enclosing spans, while distinct installs never
/// share a stamp.
struct PathState {
    stack: Vec<&'static str>,
    generation: u64,
    next_gen: u64,
    task: Option<u64>,
}

impl PathState {
    /// Stamps the state with a fresh, never-reused generation.
    fn fresh_generation(&mut self) {
        self.next_gen += 1;
        self.generation = self.next_gen;
    }
}

thread_local! {
    static PATH: std::cell::RefCell<PathState> = const {
        std::cell::RefCell::new(PathState {
            stack: Vec::new(),
            generation: 0,
            next_gen: 0,
            task: None,
        })
    };
}

fn joined_path(stack: &[&'static str]) -> String {
    stack.join("/")
}

/// Field key under which a span records the task tag of the thread that
/// created it (see [`task_scope`]).
pub const TASK_FIELD: &str = "task";

/// One finished span occurrence.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanEvent {
    /// Slash-joined nesting path, e.g. `iteration/model_update/gp_fit`.
    pub path: String,
    /// Measured monotonic wall-clock duration, seconds.
    pub dur_s: f64,
    /// Optional numeric annotations (`learner`, `iter`, …).
    pub fields: Vec<(String, f64)>,
}

/// A live span. Create with [`span!`]; close with [`Span::finish_s`] to get
/// the duration, or let it drop to record without reading the value.
pub struct Span {
    start: Instant,
    // `Some` iff tracing was enabled at creation (the path segment was pushed
    // onto this thread's stack and must be popped exactly once).
    rec: Option<SpanRec>,
}

struct SpanRec {
    path: String,
    fields: Vec<(String, f64)>,
    /// Path-stack generation at creation: the pop on close is skipped when a
    /// context switch or task boundary has since replaced the stack.
    generation: u64,
    /// Stack depth right after the push; the pop additionally requires the
    /// depth to still match, so out-of-order closes cannot pop a parent.
    depth: usize,
    /// Task tag of the creating thread (stamped into the event's fields).
    task: Option<u64>,
}

impl Span {
    /// Starts a span named `name` nested under this thread's current path.
    pub fn new(name: &'static str) -> Span {
        let rec = if enabled() {
            let (path, generation, depth, task) = PATH.with(|s| {
                let mut s = s.borrow_mut();
                s.stack.push(name);
                (joined_path(&s.stack), s.generation, s.stack.len(), s.task)
            });
            Some(SpanRec { path, fields: Vec::new(), generation, depth, task })
        } else {
            None
        };
        Span { start: Instant::now(), rec }
    }

    /// Attaches a numeric field (no-op when tracing is disabled).
    pub fn with_field(mut self, key: &'static str, value: f64) -> Span {
        if let Some(rec) = &mut self.rec {
            rec.fields.push((key.to_string(), value));
        }
        self
    }

    /// Stops the clock, records the event (when enabled at creation), and
    /// returns the elapsed seconds. Always measures, even when disabled.
    pub fn finish_s(mut self) -> f64 {
        let dur_s = self.start.elapsed().as_secs_f64();
        self.close(dur_s);
        dur_s
    }

    fn close(&mut self, dur_s: f64) {
        if let Some(rec) = self.rec.take() {
            PATH.with(|s| {
                let mut s = s.borrow_mut();
                // Only pop the segment this span pushed: if the stack has
                // been swapped (context/task switch) or deeper frames were
                // abandoned, the segment is already gone.
                if s.generation == rec.generation && s.stack.len() == rec.depth {
                    s.stack.pop();
                }
            });
            let mut fields = rec.fields;
            if let Some(task) = rec.task {
                fields.push((TASK_FIELD.to_string(), task as f64));
            }
            collector().spans.push(SpanEvent { path: rec.path, dur_s, fields });
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let dur_s = self.start.elapsed().as_secs_f64();
        self.close(dur_s);
    }
}

/// Starts a [`Span`]: `span!("gp_fit")` or `span!("gp_fit", learner = i)`.
/// Fields are evaluated and cast with `as f64`.
#[macro_export]
macro_rules! span {
    ($name:literal) => {
        $crate::Span::new($name)
    };
    ($name:literal $(, $key:ident = $val:expr)+ $(,)?) => {
        $crate::Span::new($name)$(.with_field(stringify!($key), ($val) as f64))+
    };
}

// ---------------------------------------------------------------------------
// Cross-thread context propagation
// ---------------------------------------------------------------------------

/// The ambient span path (and task tag) of the capturing thread, for
/// hand-off to `std::thread::scope` workers: capture with
/// [`current_context`] before spawning, call [`TraceContext::enter`] inside
/// the closure, and spans created by the worker nest under the capturing
/// thread's path — tagged with the capturing thread's task, if any.
#[derive(Debug, Clone, Default)]
pub struct TraceContext {
    stack: Vec<&'static str>,
    task: Option<u64>,
}

/// Captures the current thread's span path (empty when tracing is disabled,
/// so disabled runs pay only the atomic load).
pub fn current_context() -> TraceContext {
    if !enabled() {
        return TraceContext::default();
    }
    PATH.with(|s| {
        let s = s.borrow();
        TraceContext { stack: s.stack.clone(), task: s.task }
    })
}

impl TraceContext {
    /// Installs this context on the current thread until the guard drops.
    /// The install gets a fresh stack generation (spans that straddle the
    /// boundary record correctly but cannot pop segments of a stack they did
    /// not push onto); the drop restores the *previous* generation along
    /// with the previous stack, so a balanced same-thread enter/exit is
    /// invisible to spans that enclose it.
    pub fn enter(&self) -> ContextGuard {
        let (prev_stack, prev_generation, prev_task) = PATH.with(|s| {
            let mut s = s.borrow_mut();
            let prev_generation = s.generation;
            s.fresh_generation();
            let prev_stack = std::mem::replace(&mut s.stack, self.stack.clone());
            let prev_task = std::mem::replace(&mut s.task, self.task);
            (prev_stack, prev_generation, prev_task)
        });
        ContextGuard { prev_stack, prev_generation, prev_task }
    }
}

/// Restores the previous thread-local path (and its generation stamp) on
/// drop.
pub struct ContextGuard {
    prev_stack: Vec<&'static str>,
    prev_generation: u64,
    prev_task: Option<u64>,
}

impl Drop for ContextGuard {
    fn drop(&mut self) {
        let prev_stack = std::mem::take(&mut self.prev_stack);
        let prev_generation = self.prev_generation;
        let prev_task = self.prev_task;
        PATH.with(|s| {
            let mut s = s.borrow_mut();
            s.generation = prev_generation;
            s.stack = prev_stack;
            s.task = prev_task;
        });
    }
}

/// Marks a unit of pooled work on the current thread: installs `ctx` as the
/// ambient span path and tags every span created until the guard drops with
/// `task` (recorded as the [`TASK_FIELD`] field, so one shared collector can
/// be sliced back into complete per-task span trees).
///
/// Unlike [`TraceContext::enter`], dropping the guard resets the thread's
/// span state to **empty** rather than to whatever preceded the task:
/// persistent pool workers are reused across unrelated tasks, and any
/// residue — a leaked span from a panicked task, a parent path from the
/// previous tenant — must not prefix the next task's paths.
pub fn task_scope(ctx: &TraceContext, task: u64) -> TaskGuard {
    PATH.with(|s| {
        let mut s = s.borrow_mut();
        s.fresh_generation();
        s.stack = ctx.stack.clone();
        s.task = Some(task);
    });
    TaskGuard { _priv: () }
}

/// Resets the thread's span state to empty on drop (see [`task_scope`]).
pub struct TaskGuard {
    _priv: (),
}

impl Drop for TaskGuard {
    fn drop(&mut self) {
        PATH.with(|s| {
            let mut s = s.borrow_mut();
            s.fresh_generation();
            s.stack.clear();
            s.task = None;
        });
    }
}

// ---------------------------------------------------------------------------
// Counters + histograms
// ---------------------------------------------------------------------------

/// Adds `n` to counter `name`.
#[inline]
pub fn count(name: &'static str, n: u64) {
    if !enabled() {
        return;
    }
    *collector().counters.entry(name).or_insert(0) += n;
}

/// Records sample `v` into histogram `name` (non-finite samples dropped so
/// JSONL export never fails).
#[inline]
pub fn observe(name: &'static str, v: f64) {
    if !enabled() || !v.is_finite() {
        return;
    }
    collector().hists.entry(name).or_default().record(v);
}

/// A `{count, sum, min, max}` summary of observed samples.
#[derive(Debug, Clone, PartialEq)]
pub struct Hist {
    /// Samples recorded.
    pub count: u64,
    /// Sum of samples.
    pub sum: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
}

impl Default for Hist {
    fn default() -> Self {
        Hist { count: 0, sum: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }
}

impl Hist {
    fn record(&mut self, v: f64) {
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Mean sample, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 { 0.0 } else { self.sum / self.count as f64 }
    }

    /// Folds another summary into this one. Merging an empty summary is the
    /// identity (its `±inf` min/max sentinels lose every comparison), so
    /// per-task histograms can be combined without special-casing emptiness.
    pub fn merge(&mut self, other: &Hist) {
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

// ---------------------------------------------------------------------------
// Typed events
// ---------------------------------------------------------------------------

/// A typed value on an [`Event`] field.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// A float (non-finite values are dropped at record time, like
    /// [`observe`], so JSONL export never fails).
    F64(f64),
    /// An integer. Round-trips exactly through JSONL for magnitudes up to
    /// 2^53 (JSON numbers are `f64`).
    Int(i64),
    /// A string.
    Str(String),
}

impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}

impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::Int(v)
    }
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::Int(v as i64)
    }
}

impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::Int(v as i64)
    }
}

impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Int(v as i64)
    }
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}

impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

/// One structured, **timestamp-free** record: a name plus named typed fields
/// in recording order. Unlike spans, events carry no clock reading at all —
/// two same-seed runs produce byte-identical event streams, so they can sit
/// in determinism fingerprints where span durations cannot.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Dotted event name, e.g. `tuner.health`.
    pub name: String,
    /// Task tag of the recording thread, if inside a [`task_scope`].
    pub task: Option<u64>,
    /// Named fields in recording order.
    pub fields: Vec<(String, FieldValue)>,
}

impl Event {
    /// The value of field `key`, if present (first occurrence).
    pub fn field(&self, key: &str) -> Option<&FieldValue> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Field `key` as a float (`Int` fields widen losslessly below 2^53).
    pub fn f64(&self, key: &str) -> Option<f64> {
        match self.field(key)? {
            FieldValue::F64(v) => Some(*v),
            FieldValue::Int(v) => Some(*v as f64),
            FieldValue::Str(_) => None,
        }
    }

    /// Field `key` as an integer.
    pub fn int(&self, key: &str) -> Option<i64> {
        match self.field(key)? {
            FieldValue::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Field `key` as a string.
    pub fn str(&self, key: &str) -> Option<&str> {
        match self.field(key)? {
            FieldValue::Str(v) => Some(v.as_str()),
            _ => None,
        }
    }
}

/// Records a typed event (no-op when tracing is disabled). The event is
/// tagged with the recording thread's ambient task, like spans. Hot paths
/// that build a large field list should check [`enabled`] first so the
/// allocation is skipped entirely when the sink is off.
pub fn event<K, V, I>(name: &str, fields: I)
where
    K: Into<String>,
    V: Into<FieldValue>,
    I: IntoIterator<Item = (K, V)>,
{
    if !enabled() {
        return;
    }
    let task = PATH.with(|s| s.borrow().task);
    let fields = fields
        .into_iter()
        .map(|(k, v)| (k.into(), v.into()))
        .filter(|(_, v)| !matches!(v, FieldValue::F64(x) if !x.is_finite()))
        .collect();
    collector().events.push(Event { name: name.to_string(), task, fields });
}

// ---------------------------------------------------------------------------
// Snapshots + JSONL
// ---------------------------------------------------------------------------

/// Per-path aggregate over a snapshot's span events.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpanAgg {
    /// Occurrences.
    pub count: u64,
    /// Total seconds across occurrences.
    pub total_s: f64,
    /// Shortest occurrence.
    pub min_s: f64,
    /// Longest occurrence.
    pub max_s: f64,
}

/// An owned copy of the collector's state, decoupled from later recording.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceSnapshot {
    /// Finished spans in completion order.
    pub spans: Vec<SpanEvent>,
    /// Counter totals by name.
    pub counters: BTreeMap<String, u64>,
    /// Histogram summaries by name.
    pub hists: BTreeMap<String, Hist>,
    /// Typed events in recording order.
    pub events: Vec<Event>,
}

/// Copies the collector's current contents.
pub fn snapshot() -> TraceSnapshot {
    let c = collector();
    TraceSnapshot {
        spans: c.spans.clone(),
        counters: c.counters.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
        hists: c.hists.iter().map(|(k, v)| (k.to_string(), v.clone())).collect(),
        events: c.events.clone(),
    }
}

impl TraceSnapshot {
    /// Aggregates span events by path.
    pub fn span_agg(&self) -> BTreeMap<String, SpanAgg> {
        let mut out: BTreeMap<String, SpanAgg> = BTreeMap::new();
        for ev in &self.spans {
            let agg = out.entry(ev.path.clone()).or_insert(SpanAgg {
                count: 0,
                total_s: 0.0,
                min_s: f64::INFINITY,
                max_s: f64::NEG_INFINITY,
            });
            agg.count += 1;
            agg.total_s += ev.dur_s;
            agg.min_s = agg.min_s.min(ev.dur_s);
            agg.max_s = agg.max_s.max(ev.dur_s);
        }
        out
    }

    /// Total seconds across every span whose **last** path segment is `leaf`
    /// (sums the same logical phase across nesting contexts, e.g. the
    /// tuner's `iteration/replay` and a baseline's root-level `replay`).
    pub fn total_for(&self, leaf: &str) -> f64 {
        // fold, not sum(): an empty f64 `sum()` is -0.0, which would render
        // absent phases as "-0.000" in the breakdown tables.
        self.spans
            .iter()
            .filter(|ev| ev.path.rsplit('/').next() == Some(leaf))
            .map(|ev| ev.dur_s)
            .fold(0.0, |acc, d| acc + d)
    }

    /// The task tag carried by a span event, if any (see [`task_scope`]).
    pub fn task_of(ev: &SpanEvent) -> Option<u64> {
        ev.fields
            .iter()
            .find(|(k, _)| k == TASK_FIELD)
            .map(|(_, v)| *v as u64)
    }

    /// Every span event tagged with task `task`, in completion order — one
    /// task's complete span tree out of the shared collector.
    pub fn spans_for_task(&self, task: u64) -> Vec<&SpanEvent> {
        self.spans.iter().filter(|ev| Self::task_of(ev) == Some(task)).collect()
    }

    /// The distinct task tags present in the snapshot, ascending.
    pub fn tasks(&self) -> Vec<u64> {
        let mut tags: Vec<u64> = self.spans.iter().filter_map(Self::task_of).collect();
        tags.sort_unstable();
        tags.dedup();
        tags
    }

    /// A counter's total (0 when never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// A histogram summary, if any samples were recorded.
    pub fn hist(&self, name: &str) -> Option<&Hist> {
        self.hists.get(name)
    }

    /// Every event named `name`, in recording order.
    pub fn events_named(&self, name: &str) -> Vec<&Event> {
        self.events.iter().filter(|e| e.name == name).collect()
    }

    /// Every event tagged with task `task`, in recording order.
    pub fn events_for_task(&self, task: u64) -> Vec<&Event> {
        self.events.iter().filter(|e| e.task == Some(task)).collect()
    }

    /// The distinct task tags present among events, ascending.
    pub fn event_tasks(&self) -> Vec<u64> {
        let mut tags: Vec<u64> = self.events.iter().filter_map(|e| e.task).collect();
        tags.sort_unstable();
        tags.dedup();
        tags
    }

    /// Serializes to JSONL: one `span`, `counter`, or `hist` object per line.
    pub fn to_jsonl(&self) -> Result<String, minjson::JsonError> {
        let mut out = String::new();
        for ev in &self.spans {
            let mut obj = vec![
                ("type".to_string(), Json::Str("span".to_string())),
                ("path".to_string(), Json::Str(ev.path.clone())),
                ("dur_s".to_string(), Json::Num(ev.dur_s)),
            ];
            if !ev.fields.is_empty() {
                let fields =
                    ev.fields.iter().map(|(k, v)| (k.clone(), Json::Num(*v))).collect();
                obj.push(("fields".to_string(), Json::Obj(fields)));
            }
            out.push_str(&Json::Obj(obj).render()?);
            out.push('\n');
        }
        for (name, value) in &self.counters {
            let obj = vec![
                ("type".to_string(), Json::Str("counter".to_string())),
                ("name".to_string(), Json::Str(name.clone())),
                ("value".to_string(), Json::Num(*value as f64)),
            ];
            out.push_str(&Json::Obj(obj).render()?);
            out.push('\n');
        }
        for (name, h) in &self.hists {
            let obj = vec![
                ("type".to_string(), Json::Str("hist".to_string())),
                ("name".to_string(), Json::Str(name.clone())),
                ("count".to_string(), Json::Num(h.count as f64)),
                ("sum".to_string(), Json::Num(h.sum)),
                ("min".to_string(), Json::Num(h.min)),
                ("max".to_string(), Json::Num(h.max)),
            ];
            out.push_str(&Json::Obj(obj).render()?);
            out.push('\n');
        }
        for ev in &self.events {
            // Fields render as ordered `[key, tag, value]` triples so typed
            // values round-trip losslessly (a flat object would collapse the
            // f64/int distinction and scramble recording order).
            let fields: Vec<Json> = ev
                .fields
                .iter()
                .map(|(k, v)| {
                    let (tag, val) = match v {
                        FieldValue::F64(x) => ("f", Json::Num(*x)),
                        FieldValue::Int(x) => ("i", Json::Num(*x as f64)),
                        FieldValue::Str(x) => ("s", Json::Str(x.clone())),
                    };
                    Json::Arr(vec![Json::Str(k.clone()), Json::Str(tag.to_string()), val])
                })
                .collect();
            let mut obj = vec![
                ("type".to_string(), Json::Str("event".to_string())),
                ("name".to_string(), Json::Str(ev.name.clone())),
            ];
            if let Some(task) = ev.task {
                obj.push(("task".to_string(), Json::Num(task as f64)));
            }
            obj.push(("fields".to_string(), Json::Arr(fields)));
            out.push_str(&Json::Obj(obj).render()?);
            out.push('\n');
        }
        Ok(out)
    }

    /// Parses JSONL produced by [`TraceSnapshot::to_jsonl`].
    pub fn from_jsonl(text: &str) -> Result<TraceSnapshot, minjson::JsonError> {
        let mut snap = TraceSnapshot::default();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let v = Json::parse(line)
                .map_err(|e| minjson::JsonError::new(format!("line {}: {e}", lineno + 1)))?;
            let kind = v.field("type")?.as_str().unwrap_or_default().to_string();
            match kind.as_str() {
                "span" => {
                    let path = v.field("path")?.as_str().unwrap_or_default().to_string();
                    let dur_s = v.field("dur_s")?.as_f64().unwrap_or(0.0);
                    let mut fields = Vec::new();
                    if let Some(Json::Obj(fs)) = v.get("fields") {
                        for (k, fv) in fs {
                            fields.push((k.clone(), fv.as_f64().unwrap_or(0.0)));
                        }
                    }
                    snap.spans.push(SpanEvent { path, dur_s, fields });
                }
                "counter" => {
                    let name = v.field("name")?.as_str().unwrap_or_default().to_string();
                    let value = v.field("value")?.as_f64().unwrap_or(0.0) as u64;
                    snap.counters.insert(name, value);
                }
                "hist" => {
                    let name = v.field("name")?.as_str().unwrap_or_default().to_string();
                    snap.hists.insert(
                        name,
                        Hist {
                            count: v.field("count")?.as_f64().unwrap_or(0.0) as u64,
                            sum: v.field("sum")?.as_f64().unwrap_or(0.0),
                            min: v.field("min")?.as_f64().unwrap_or(0.0),
                            max: v.field("max")?.as_f64().unwrap_or(0.0),
                        },
                    );
                }
                "event" => {
                    let name = v.field("name")?.as_str().unwrap_or_default().to_string();
                    let task = v.get("task").and_then(|t| t.as_f64()).map(|t| t as u64);
                    let mut fields = Vec::new();
                    if let Some(Json::Arr(fs)) = v.get("fields") {
                        for entry in fs {
                            let triple = entry.as_array().ok_or_else(|| {
                                minjson::JsonError::new(format!(
                                    "line {}: event field is not a [key, tag, value] triple",
                                    lineno + 1
                                ))
                            })?;
                            let (key, tag, val) = match triple {
                                [k, t, val] => (
                                    k.as_str().unwrap_or_default().to_string(),
                                    t.as_str().unwrap_or_default(),
                                    val,
                                ),
                                _ => {
                                    return Err(minjson::JsonError::new(format!(
                                        "line {}: event field is not a [key, tag, value] triple",
                                        lineno + 1
                                    )));
                                }
                            };
                            let value = match tag {
                                "f" => FieldValue::F64(val.as_f64().unwrap_or(0.0)),
                                "i" => FieldValue::Int(val.as_f64().unwrap_or(0.0) as i64),
                                "s" => FieldValue::Str(
                                    val.as_str().unwrap_or_default().to_string(),
                                ),
                                other => {
                                    return Err(minjson::JsonError::new(format!(
                                        "line {}: unknown event field tag `{other}`",
                                        lineno + 1
                                    )));
                                }
                            };
                            fields.push((key, value));
                        }
                    }
                    snap.events.push(Event { name, task, fields });
                }
                other => {
                    return Err(minjson::JsonError::new(format!(
                        "line {}: unknown event type `{other}`",
                        lineno + 1
                    )));
                }
            }
        }
        Ok(snap)
    }

    /// Writes the JSONL rendering to `path`.
    pub fn write_jsonl(&self, path: &std::path::Path) -> std::io::Result<()> {
        let text = self
            .to_jsonl()
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        std::fs::write(path, text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The collector is process-global and Rust runs tests on parallel
    // threads; serialize every test that records events.
    fn lock() -> MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_records_nothing_but_still_measures() {
        let _g = lock();
        disable();
        reset();
        let sp = span!("quiet", x = 3);
        count("quiet.counter", 5);
        observe("quiet.hist", 1.0);
        assert!(sp.finish_s() >= 0.0);
        let snap = snapshot();
        assert!(snap.spans.is_empty());
        assert!(snap.counters.is_empty());
        assert!(snap.hists.is_empty());
    }

    #[test]
    fn spans_nest_into_slash_paths() {
        let _g = lock();
        enable();
        reset();
        {
            let outer = span!("outer");
            {
                let inner = span!("inner", k = 2);
                let _ = inner.finish_s();
            }
            let _ = outer.finish_s();
        }
        disable();
        let snap = snapshot();
        let paths: Vec<&str> = snap.spans.iter().map(|e| e.path.as_str()).collect();
        // Inner finishes first; both carry full nesting paths.
        assert_eq!(paths, vec!["outer/inner", "outer"]);
        assert_eq!(snap.spans[0].fields, vec![("k".to_string(), 2.0)]);
    }

    #[test]
    fn dropped_span_records_like_finish() {
        let _g = lock();
        enable();
        reset();
        {
            let _sp = span!("via_drop");
        }
        disable();
        assert_eq!(snapshot().span_agg()["via_drop"].count, 1);
    }

    #[test]
    fn context_propagates_paths_onto_scoped_threads() {
        let _g = lock();
        enable();
        reset();
        {
            let parent = span!("parent");
            let ctx = current_context();
            std::thread::scope(|scope| {
                for i in 0..3 {
                    let ctx = ctx.clone();
                    scope.spawn(move || {
                        let _guard = ctx.enter();
                        let sp = span!("child", worker = i);
                        let _ = sp.finish_s();
                    });
                }
            });
            let _ = parent.finish_s();
        }
        disable();
        let agg = snapshot().span_agg();
        assert_eq!(agg["parent/child"].count, 3);
        assert_eq!(agg["parent"].count, 1);
    }

    #[test]
    fn counters_and_hists_accumulate() {
        let _g = lock();
        enable();
        reset();
        count("c.a", 2);
        count("c.a", 3);
        observe("h.x", 1.5);
        observe("h.x", 0.5);
        observe("h.x", f64::NAN); // dropped
        disable();
        let snap = snapshot();
        assert_eq!(snap.counter("c.a"), 5);
        let h = snap.hist("h.x").unwrap();
        assert_eq!((h.count, h.sum, h.min, h.max), (2, 2.0, 0.5, 1.5));
        assert_eq!(h.mean(), 1.0);
    }

    #[test]
    fn jsonl_round_trip_preserves_everything() {
        let _g = lock();
        enable();
        reset();
        {
            let outer = span!("a", iter = 7);
            let inner = span!("b");
            let _ = inner.finish_s();
            let _ = outer.finish_s();
        }
        count("evals", 11);
        observe("sim_s", 123.456);
        disable();
        let snap = snapshot();
        let text = snap.to_jsonl().unwrap();
        let back = TraceSnapshot::from_jsonl(&text).unwrap();
        assert_eq!(back, snap);
        assert_eq!(back.span_agg(), snap.span_agg());
    }

    #[test]
    fn task_scope_tags_spans_and_resets_on_drop() {
        let _g = lock();
        enable();
        reset();
        let ctx = TraceContext { stack: vec!["fleet"], task: None };
        {
            let _t = task_scope(&ctx, 42);
            let sp = span!("tenant");
            let _ = sp.finish_s();
        }
        {
            // Worker reused for a different task: no residue from task 42.
            let _t = task_scope(&ctx, 43);
            let sp = span!("tenant");
            let _ = sp.finish_s();
        }
        // After the guard, the thread is back to a clean root.
        let sp = span!("untagged");
        let _ = sp.finish_s();
        disable();
        let snap = snapshot();
        let t42 = snap.spans_for_task(42);
        let t43 = snap.spans_for_task(43);
        assert_eq!(t42.len(), 1);
        assert_eq!(t42[0].path, "fleet/tenant");
        assert_eq!(t43.len(), 1);
        assert_eq!(t43[0].path, "fleet/tenant");
        assert_eq!(snap.tasks(), vec![42, 43]);
        let untagged = snap.spans.iter().find(|e| e.path == "untagged").unwrap();
        assert!(TraceSnapshot::task_of(untagged).is_none());
    }

    #[test]
    fn leaked_span_does_not_leak_parent_paths_into_the_next_task() {
        let _g = lock();
        enable();
        reset();
        let ctx = TraceContext { stack: vec!["fleet"], task: None };
        {
            let _t = task_scope(&ctx, 1);
            // A span the task never closes (e.g. held across a panic that the
            // pool's catch_unwind swallowed, or simply forgotten).
            std::mem::forget(span!("leaky"));
        }
        {
            let _t = task_scope(&ctx, 2);
            let sp = span!("clean");
            let _ = sp.finish_s();
        }
        disable();
        let snap = snapshot();
        let clean = snap.spans_for_task(2);
        assert_eq!(clean.len(), 1);
        assert_eq!(
            clean[0].path, "fleet/clean",
            "the next task's spans must not nest under the leaked `leaky` path"
        );
    }

    #[test]
    fn span_closed_after_its_context_cannot_pop_a_foreign_stack() {
        let _g = lock();
        enable();
        reset();
        let ctx = TraceContext { stack: vec!["root"], task: None };
        let straddler = {
            let _g2 = ctx.enter();
            span!("straddler")
        };
        // The guard has restored the (empty) previous stack; build fresh
        // nesting, then close the straddler: it must not pop `outer`.
        let outer = span!("outer");
        let _ = straddler.finish_s();
        {
            let inner = span!("inner");
            let _ = inner.finish_s();
        }
        let _ = outer.finish_s();
        disable();
        let snap = snapshot();
        let paths: Vec<&str> = snap.spans.iter().map(|e| e.path.as_str()).collect();
        assert_eq!(paths, vec!["root/straddler", "outer/inner", "outer"]);
    }

    #[test]
    fn empty_histogram_keeps_identity_sentinels() {
        // A never-recorded summary: count 0, mean 0, and ±inf min/max
        // sentinels that lose every comparison — both against a sample
        // (`record`) and against another summary (`merge`).
        let h = Hist::default();
        assert_eq!(h.count, 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min, f64::INFINITY);
        assert_eq!(h.max, f64::NEG_INFINITY);

        let mut empty = Hist::default();
        let full = Hist { count: 2, sum: 3.0, min: 1.0, max: 2.0 };
        empty.merge(&full);
        assert_eq!(empty, full, "merging into an empty summary must be the identity");
        let mut full2 = full.clone();
        full2.merge(&Hist::default());
        assert_eq!(full2, full, "merging an empty summary must be the identity");
    }

    #[test]
    fn single_sample_histogram_collapses_to_the_sample() {
        let _g = lock();
        enable();
        reset();
        observe("h.single", 4.25);
        disable();
        let snap = snapshot();
        let h = snap.hist("h.single").unwrap();
        assert_eq!((h.count, h.sum, h.min, h.max), (1, 4.25, 4.25, 4.25));
        assert_eq!(h.mean(), 4.25);
    }

    #[test]
    fn histograms_merge_across_task_slices() {
        // Merging per-task summaries reproduces the global summary: the
        // `{count, sum, min, max}` representation is a monoid.
        let a = Hist { count: 3, sum: 6.0, min: 1.0, max: 3.0 };
        let b = Hist { count: 2, sum: 9.0, min: 4.0, max: 5.0 };
        let mut merged = Hist::default();
        merged.merge(&a);
        merged.merge(&b);
        assert_eq!((merged.count, merged.sum, merged.min, merged.max), (5, 15.0, 1.0, 5.0));
    }

    #[test]
    fn disabled_events_record_nothing() {
        let _g = lock();
        disable();
        reset();
        event("quiet.event", [("x", FieldValue::F64(1.0))]);
        assert!(snapshot().events.is_empty());
    }

    #[test]
    fn events_carry_typed_fields_and_task_tags() {
        let _g = lock();
        enable();
        reset();
        event(
            "tuner.health",
            vec![
                ("iter", FieldValue::Int(7)),
                ("regret", FieldValue::F64(0.125)),
                ("path", FieldValue::Str("dense".to_string())),
                ("bad", FieldValue::F64(f64::NAN)), // dropped like observe()
            ],
        );
        let ctx = TraceContext { stack: vec![], task: None };
        {
            let _t = task_scope(&ctx, 9);
            event("tuner.health", [("iter", FieldValue::Int(0))]);
        }
        disable();
        let snap = snapshot();
        assert_eq!(snap.events.len(), 2);
        let ev = &snap.events[0];
        assert_eq!(ev.name, "tuner.health");
        assert_eq!(ev.task, None);
        assert_eq!(ev.int("iter"), Some(7));
        assert_eq!(ev.f64("iter"), Some(7.0), "Int widens to f64 on demand");
        assert_eq!(ev.f64("regret"), Some(0.125));
        assert_eq!(ev.str("path"), Some("dense"));
        assert_eq!(ev.field("bad"), None, "non-finite f64 fields are dropped");
        assert_eq!(snap.events[1].task, Some(9));
        assert_eq!(snap.events_named("tuner.health").len(), 2);
        assert_eq!(snap.events_for_task(9).len(), 1);
        assert_eq!(snap.event_tasks(), vec![9]);
    }

    #[test]
    fn event_jsonl_round_trip_preserves_types_and_order() {
        let _g = lock();
        enable();
        reset();
        event(
            "tuner.health",
            vec![
                ("z", FieldValue::F64(-1.5)),
                ("a", FieldValue::Int(-42)),
                ("s", FieldValue::Str("sparse|inc".to_string())),
            ],
        );
        let ctx = TraceContext { stack: vec![], task: None };
        {
            let _t = task_scope(&ctx, 3);
            event("fleet.note", [("w", FieldValue::F64(0.1))]);
        }
        count("evals", 2);
        observe("sim_s", 1.0);
        disable();
        let snap = snapshot();
        let text = snap.to_jsonl().unwrap();
        let back = TraceSnapshot::from_jsonl(&text).unwrap();
        assert_eq!(back, snap, "typed events must round-trip losslessly");
        // Field order (z before a) and the f64/int distinction survive.
        assert_eq!(back.events[0].fields[0].0, "z");
        assert!(matches!(back.events[0].fields[1].1, FieldValue::Int(-42)));
        assert_eq!(back.events[1].task, Some(3));
    }

    #[test]
    fn total_for_matches_leaf_segments_across_contexts() {
        let snap = TraceSnapshot {
            spans: vec![
                SpanEvent { path: "iteration/replay".into(), dur_s: 1.0, fields: vec![] },
                SpanEvent { path: "replay".into(), dur_s: 2.0, fields: vec![] },
                SpanEvent { path: "replay/inner".into(), dur_s: 4.0, fields: vec![] },
            ],
            ..Default::default()
        };
        assert_eq!(snap.total_for("replay"), 3.0);
    }
}
