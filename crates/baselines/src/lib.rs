//! The baseline tuners of the paper's evaluation (§7), each adapted to the
//! resource-oriented problem exactly the way the paper describes:
//!
//! * **iTuned** ([`ituned`]) — GP + plain Expected Improvement with the
//!   objective swapped from throughput-maximization to
//!   resource-minimization, algorithm otherwise unmodified (so it happily
//!   recommends SLA-violating configs).
//! * **OtterTune-w-Con** ([`ottertune`]) — workload mapping by internal-
//!   metric distance to a single matched historical workload, matched data
//!   merged into one GP, acquisition replaced with ResTune's CEI.
//! * **CDBTune-w-Con** ([`cdbtune`]) — DDPG over internal-metric states with
//!   the reward rewritten for resource + SLA (positive-but-infeasible and
//!   negative-but-feasible rewards are zeroed).
//! * **Grid search** ([`grid`]) — the 8×8×8 ground-truth sweep of the §7.3
//!   case study.
//!
//! All baselines run through the shared
//! [`restune_core::driver::TuningDriver`]/[`restune_core::engine::EvalEngine`]
//! loop as [`restune_core::driver::Proposer`] implementations (GP-free
//! strategies included), so replay retries, failure penalties, and
//! incumbent/convergence bookkeeping are identical across methods and every
//! baseline produces the same [`restune_core::tuner::TuningOutcome`] the
//! experiment harnesses overlay directly.

pub mod cdbtune;
pub mod grid;
pub mod ituned;
pub mod method;
pub mod ottertune;

pub use cdbtune::{CdbTuneProposer, CdbTuneWithConstraints};
pub use grid::{grid_search, grid_tuning, GridProposer};
pub use ituned::ITuned;
pub use method::{method_driver, run_method, Method, MethodContext};
pub use ottertune::{OtterTuneProposer, OtterTuneWithConstraints};
