//! Shared evaluate-and-record machinery for baselines that do not use
//! ResTune's session (OtterTune-w-Con, CDBTune-w-Con).

use dbsim::{Configuration, EvalOutcome, Observation};
use restune_core::problem::{SlaConstraints, TuningProblem};
use restune_core::resilience::{
    evaluate_with_retry, penalty_observation, FailureCounts, FailureKind, ReplayPolicy,
};
use restune_core::tuner::{IterationRecord, IterationTiming, TuningEnvironment, TuningOutcome};

/// A minimal tuning loop: evaluates points, tracks history, SLA feasibility,
/// and the best feasible incumbent, and renders a [`TuningOutcome`].
///
/// Failure semantics match `TuningSession` (DESIGN.md §9): transient faults
/// retry with backoff, crash/timeout records an infeasible penalized
/// observation, and only full replays can certify a new incumbent.
pub struct EvalLoop {
    /// The environment being tuned.
    pub env: TuningEnvironment,
    /// Problem definition (SLA fixed from the default observation).
    pub problem: TuningProblem,
    /// The default observation.
    pub default_observation: Observation,
    /// Normalized default point.
    pub default_point: Vec<f64>,
    /// All evaluated points (default excluded).
    pub points: Vec<Vec<f64>>,
    /// Raw objective values per point.
    pub res: Vec<f64>,
    /// Raw throughput per point.
    pub tps: Vec<f64>,
    /// Raw latency per point.
    pub lat: Vec<f64>,
    /// Internal metric vectors per point.
    pub metrics: Vec<Vec<f64>>,
    /// Retry policy for transient replay failures.
    pub policy: ReplayPolicy,
    history: Vec<IterationRecord>,
    best: Option<(usize, f64, Vec<f64>)>,
    default_objective: f64,
    failures: FailureCounts,
    obs_worst: f64,
    obs_best: f64,
}

impl EvalLoop {
    /// Evaluates the default configuration and fixes the SLA.
    pub fn new(mut env: TuningEnvironment) -> Self {
        let default_observation = env.dbms.evaluate(&Configuration::dba_default());
        let sla = SlaConstraints::from_default_observation(&default_observation);
        let problem = TuningProblem {
            knob_set: env.knob_set.clone(),
            resource: env.resource,
            constraints: sla,
        };
        let default_point = env.knob_set.default_point();
        let default_objective = env.resource.value(&default_observation);
        EvalLoop {
            env,
            problem,
            default_observation,
            default_point,
            points: Vec::new(),
            res: Vec::new(),
            tps: Vec::new(),
            lat: Vec::new(),
            metrics: Vec::new(),
            policy: ReplayPolicy::default(),
            history: Vec::new(),
            best: None,
            default_objective,
            failures: FailureCounts::default(),
            obs_worst: default_objective,
            obs_best: default_objective,
        }
    }

    /// Iterations completed.
    pub fn iterations(&self) -> usize {
        self.history.len()
    }

    /// The current best feasible objective (default if nothing better yet).
    pub fn best_objective(&self) -> f64 {
        self.best.as_ref().map(|b| b.1).unwrap_or(self.default_objective)
    }

    /// Evaluates `point`, recording the iteration with the given
    /// model/recommendation timings — the `finish_s()` values of the
    /// caller's `model_update`/`recommendation` spans, so `IterationTiming`
    /// and the trace stay one data source (the replay span itself lives in
    /// `evaluate_with_retry`).
    pub fn evaluate(
        &mut self,
        point: Vec<f64>,
        model_update_s: f64,
        recommendation_s: f64,
    ) -> &IterationRecord {
        trace::count("loop.iterations", 1);
        let iter = self.history.len();
        let config =
            self.problem.knob_set.to_configuration(&point, &Configuration::dba_default());
        let replay = evaluate_with_retry(&mut self.env.dbms, &config, &self.policy);
        let replay_s = replay.replay_s;
        let retries = replay.retries;
        let failure = FailureKind::from_outcome(&replay.outcome);
        let observation = match replay.outcome {
            EvalOutcome::Ok(obs) => obs,
            EvalOutcome::Partial { observation, .. } => observation,
            EvalOutcome::Crashed { .. } | EvalOutcome::TimedOut { .. } => penalty_observation(
                config.clone(),
                self.env.resource,
                self.obs_worst + 0.3 * (self.obs_worst - self.obs_best).max(1.0),
                self.problem.constraints.lat_ceiling(),
                replay_s,
            ),
        };
        let objective = self.env.resource.value(&observation);
        let feasible = self.problem.constraints.is_feasible(&observation);
        self.points.push(point.clone());
        self.res.push(objective);
        self.tps.push(observation.tps);
        self.lat.push(observation.p99_ms);
        self.metrics.push(observation.internal.to_vec());
        if failure.is_none() {
            self.obs_worst = self.obs_worst.max(objective);
            self.obs_best = self.obs_best.min(objective);
            if feasible
                && objective < self.best.as_ref().map(|b| b.1).unwrap_or(self.default_objective)
            {
                self.best = Some((iter, objective, point.clone()));
            }
        }
        self.failures.record(failure, retries);
        let record = IterationRecord {
            iteration: iter,
            point,
            objective,
            feasible,
            best_feasible_objective: self.best_objective(),
            weights: None,
            failure,
            retries,
            timing: IterationTiming {
                meta_data_processing_s: 0.0,
                model_update_s,
                gp_fit_s: 0.0,
                weight_update_s: 0.0,
                recommendation_s,
                replay_s,
            },
            observation,
        };
        self.history.push(record);
        self.history.last().unwrap()
    }

    /// Mutable access to the most recent iteration record (baselines patch
    /// timings in after training).
    pub fn history_last_mut(&mut self) -> Option<&mut IterationRecord> {
        self.history.last_mut()
    }

    /// Renders the outcome in the same shape as a ResTune session.
    pub fn outcome(&self) -> TuningOutcome {
        let (best_iteration, best_objective, best_config) = match &self.best {
            Some((it, obj, point)) => (
                Some(*it),
                Some(*obj),
                self.problem.knob_set.to_configuration(point, &Configuration::dba_default()),
            ),
            None => (None, Some(self.default_objective), Configuration::dba_default()),
        };
        TuningOutcome {
            history: self.history.clone(),
            default_observation: self.default_observation.clone(),
            sla: self.problem.constraints,
            best_config,
            best_objective,
            best_iteration,
            converged_at: None,
            default_obj_value: self.default_objective,
            failures: self.failures,
        }
    }

    /// Replay-failure tally so far.
    pub fn failures(&self) -> FailureCounts {
        self.failures
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbsim::{InstanceType, KnobSet, WorkloadSpec};
    use restune_core::problem::ResourceKind;

    fn env() -> TuningEnvironment {
        TuningEnvironment::builder()
            .instance(InstanceType::A)
            .workload(WorkloadSpec::twitter())
            .resource(ResourceKind::Cpu)
            .knob_set(KnobSet::case_study())
            .seed(1)
            .build()
    }

    #[test]
    fn tracks_best_feasible_only() {
        let mut el = EvalLoop::new(env());
        // A throttled point: low CPU but infeasible.
        let throttled = vec![1.0 / 128.0, 0.0, 0.0];
        el.evaluate(throttled, 0.0, 0.0);
        let record = &el.outcome().history[0];
        assert!(!record.feasible, "throttled config should violate the SLA");
        assert_eq!(el.best_objective(), el.outcome().default_obj_value);
    }

    #[test]
    fn good_point_becomes_incumbent() {
        let mut el = EvalLoop::new(env());
        let good = vec![13.0 / 128.0, 0.0, 0.3];
        el.evaluate(good, 0.0, 0.0);
        let o = el.outcome();
        assert_eq!(o.best_iteration, Some(0));
        assert!(o.best_objective.unwrap() < o.default_obj_value);
    }

    #[test]
    fn outcome_history_matches_iterations() {
        let mut el = EvalLoop::new(env());
        el.evaluate(vec![0.5, 0.5, 0.5], 0.0, 0.0);
        el.evaluate(vec![0.2, 0.2, 0.2], 0.0, 0.0);
        assert_eq!(el.iterations(), 2);
        assert_eq!(el.outcome().history.len(), 2);
    }

    #[test]
    fn failed_replays_are_penalized_and_never_become_incumbents() {
        use dbsim::FaultPlan;
        let env = TuningEnvironment::builder()
            .instance(InstanceType::A)
            .workload(WorkloadSpec::twitter())
            .resource(ResourceKind::Cpu)
            .knob_set(KnobSet::case_study())
            .seed(2)
            .fault_plan(FaultPlan::none().with_transient_rate(0.6).with_seed(9))
            .build();
        let mut el = EvalLoop::new(env);
        el.policy.max_retries = 0; // surface failures instead of absorbing them
        let good = vec![13.0 / 128.0, 0.0, 0.3];
        for _ in 0..12 {
            el.evaluate(good.clone(), 0.0, 0.0);
        }
        let o = el.outcome();
        assert!(o.failures.failed_iterations() > 0, "60% fault rate must fail some");
        for r in &o.history {
            use restune_core::resilience::FailureKind;
            if matches!(r.failure, Some(FailureKind::Crash) | Some(FailureKind::Timeout)) {
                assert!(!r.feasible);
                assert!(r.objective.is_finite() && r.objective > o.default_obj_value);
                assert!(Some(r.iteration) != o.best_iteration);
            }
        }
        // The good point still becomes the incumbent on a successful replay.
        assert!(o.best_objective.unwrap() < o.default_obj_value);
    }
}
