//! Shared evaluate-and-record machinery for baselines that do not use
//! ResTune's session (OtterTune-w-Con, CDBTune-w-Con).

use dbsim::{Configuration, Observation};
use restune_core::problem::{SlaConstraints, TuningProblem};
use restune_core::tuner::{IterationRecord, IterationTiming, TuningEnvironment, TuningOutcome};

/// A minimal tuning loop: evaluates points, tracks history, SLA feasibility,
/// and the best feasible incumbent, and renders a [`TuningOutcome`].
pub struct EvalLoop {
    /// The environment being tuned.
    pub env: TuningEnvironment,
    /// Problem definition (SLA fixed from the default observation).
    pub problem: TuningProblem,
    /// The default observation.
    pub default_observation: Observation,
    /// Normalized default point.
    pub default_point: Vec<f64>,
    /// All evaluated points (default excluded).
    pub points: Vec<Vec<f64>>,
    /// Raw objective values per point.
    pub res: Vec<f64>,
    /// Raw throughput per point.
    pub tps: Vec<f64>,
    /// Raw latency per point.
    pub lat: Vec<f64>,
    /// Internal metric vectors per point.
    pub metrics: Vec<Vec<f64>>,
    history: Vec<IterationRecord>,
    best: Option<(usize, f64, Vec<f64>)>,
    default_objective: f64,
}

impl EvalLoop {
    /// Evaluates the default configuration and fixes the SLA.
    pub fn new(mut env: TuningEnvironment) -> Self {
        let default_observation = env.dbms.evaluate(&Configuration::dba_default());
        let sla = SlaConstraints::from_default_observation(&default_observation);
        let problem = TuningProblem {
            knob_set: env.knob_set.clone(),
            resource: env.resource,
            constraints: sla,
        };
        let default_point = env.knob_set.default_point();
        let default_objective = env.resource.value(&default_observation);
        EvalLoop {
            env,
            problem,
            default_observation,
            default_point,
            points: Vec::new(),
            res: Vec::new(),
            tps: Vec::new(),
            lat: Vec::new(),
            metrics: Vec::new(),
            history: Vec::new(),
            best: None,
            default_objective,
        }
    }

    /// Iterations completed.
    pub fn iterations(&self) -> usize {
        self.history.len()
    }

    /// The current best feasible objective (default if nothing better yet).
    pub fn best_objective(&self) -> f64 {
        self.best.as_ref().map(|b| b.1).unwrap_or(self.default_objective)
    }

    /// Evaluates `point`, recording the iteration with the given
    /// model/recommendation timings.
    pub fn evaluate(
        &mut self,
        point: Vec<f64>,
        model_update_s: f64,
        recommendation_s: f64,
    ) -> &IterationRecord {
        let iter = self.history.len();
        let config =
            self.problem.knob_set.to_configuration(&point, &Configuration::dba_default());
        let observation = self.env.dbms.evaluate(&config);
        let objective = self.env.resource.value(&observation);
        let feasible = self.problem.constraints.is_feasible(&observation);
        self.points.push(point.clone());
        self.res.push(objective);
        self.tps.push(observation.tps);
        self.lat.push(observation.p99_ms);
        self.metrics.push(observation.internal.to_vec());
        if feasible
            && objective < self.best.as_ref().map(|b| b.1).unwrap_or(self.default_objective)
        {
            self.best = Some((iter, objective, point.clone()));
        }
        let record = IterationRecord {
            iteration: iter,
            point,
            objective,
            feasible,
            best_feasible_objective: self.best_objective(),
            weights: None,
            timing: IterationTiming {
                meta_data_processing_s: 0.0,
                model_update_s,
                gp_fit_s: 0.0,
                weight_update_s: 0.0,
                recommendation_s,
                replay_s: observation.replay_seconds,
            },
            observation,
        };
        self.history.push(record);
        self.history.last().unwrap()
    }

    /// Mutable access to the most recent iteration record (baselines patch
    /// timings in after training).
    pub fn history_last_mut(&mut self) -> Option<&mut IterationRecord> {
        self.history.last_mut()
    }

    /// Renders the outcome in the same shape as a ResTune session.
    pub fn outcome(&self) -> TuningOutcome {
        let (best_iteration, best_objective, best_config) = match &self.best {
            Some((it, obj, point)) => (
                Some(*it),
                Some(*obj),
                self.problem.knob_set.to_configuration(point, &Configuration::dba_default()),
            ),
            None => (None, Some(self.default_objective), Configuration::dba_default()),
        };
        TuningOutcome {
            history: self.history.clone(),
            default_observation: self.default_observation.clone(),
            sla: self.problem.constraints,
            best_config,
            best_objective,
            best_iteration,
            converged_at: None,
            default_obj_value: self.default_objective,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbsim::{InstanceType, KnobSet, WorkloadSpec};
    use restune_core::problem::ResourceKind;

    fn env() -> TuningEnvironment {
        TuningEnvironment::builder()
            .instance(InstanceType::A)
            .workload(WorkloadSpec::twitter())
            .resource(ResourceKind::Cpu)
            .knob_set(KnobSet::case_study())
            .seed(1)
            .build()
    }

    #[test]
    fn tracks_best_feasible_only() {
        let mut el = EvalLoop::new(env());
        // A throttled point: low CPU but infeasible.
        let throttled = vec![1.0 / 128.0, 0.0, 0.0];
        el.evaluate(throttled, 0.0, 0.0);
        let record = &el.outcome().history[0];
        assert!(!record.feasible, "throttled config should violate the SLA");
        assert_eq!(el.best_objective(), el.outcome().default_obj_value);
    }

    #[test]
    fn good_point_becomes_incumbent() {
        let mut el = EvalLoop::new(env());
        let good = vec![13.0 / 128.0, 0.0, 0.3];
        el.evaluate(good, 0.0, 0.0);
        let o = el.outcome();
        assert_eq!(o.best_iteration, Some(0));
        assert!(o.best_objective.unwrap() < o.default_obj_value);
    }

    #[test]
    fn outcome_history_matches_iterations() {
        let mut el = EvalLoop::new(env());
        el.evaluate(vec![0.5, 0.5, 0.5], 0.0, 0.0);
        el.evaluate(vec![0.2, 0.2, 0.2], 0.0, 0.0);
        assert_eq!(el.iterations(), 2);
        assert_eq!(el.outcome().history.len(), 2);
    }
}
