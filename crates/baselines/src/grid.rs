//! Exhaustive grid search — the §7.3 case study's "known ground-truth"
//! (an 8×8×8 sweep over the three CPU knobs).

use dbsim::{Configuration, SimulatedDbms};
use restune_core::problem::{ResourceKind, SlaConstraints};
use dbsim::KnobSet;

/// Result of a grid sweep.
#[derive(Debug, Clone)]
pub struct GridResult {
    /// Best feasible configuration.
    pub best_config: Configuration,
    /// Best feasible normalized point.
    pub best_point: Vec<f64>,
    /// Best feasible objective.
    pub best_objective: f64,
    /// Number of grid cells evaluated.
    pub evaluated: usize,
    /// Number of feasible cells.
    pub feasible: usize,
}

/// Sweeps a full `levels^dim` grid (noiseless), returning the best feasible
/// cell under an SLA fixed from the default configuration.
pub fn grid_search(
    dbms: &SimulatedDbms,
    knob_set: &KnobSet,
    resource: ResourceKind,
    levels: usize,
) -> GridResult {
    assert!(levels >= 2);
    let default_obs = dbms.evaluate_noiseless(&Configuration::dba_default());
    let sla = SlaConstraints::from_default_observation(&default_obs);
    let dim = knob_set.dim();
    let cells = levels.pow(dim as u32);
    let base = Configuration::dba_default();

    let mut best: Option<(Vec<f64>, f64)> = None;
    let mut feasible = 0usize;
    for cell in 0..cells {
        let mut idx = cell;
        let point: Vec<f64> = (0..dim)
            .map(|_| {
                let level = idx % levels;
                idx /= levels;
                level as f64 / (levels - 1) as f64
            })
            .collect();
        let config = knob_set.to_configuration(&point, &base);
        let obs = dbms.evaluate_noiseless(&config);
        if sla.is_feasible(&obs) {
            feasible += 1;
            let objective = resource.value(&obs);
            if best.as_ref().map(|(_, v)| objective < *v).unwrap_or(true) {
                best = Some((point, objective));
            }
        }
    }
    let (best_point, best_objective) = best.unwrap_or_else(|| {
        (knob_set.default_point(), resource.value(&default_obs))
    });
    GridResult {
        best_config: knob_set.to_configuration(&best_point, &base),
        best_point,
        best_objective,
        evaluated: cells,
        feasible,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbsim::{InstanceType, WorkloadSpec};

    #[test]
    fn case_study_grid_finds_a_much_better_feasible_config() {
        let dbms =
            SimulatedDbms::new(InstanceType::A, WorkloadSpec::twitter(), 0).with_noise(0.0);
        let result = grid_search(&dbms, &KnobSet::case_study(), ResourceKind::Cpu, 8);
        assert_eq!(result.evaluated, 512);
        assert!(result.feasible > 0);
        let default =
            dbms.evaluate_noiseless(&Configuration::dba_default()).resources.cpu_pct;
        assert!(
            result.best_objective < 0.5 * default,
            "grid best {} vs default {default}",
            result.best_objective
        );
        // The winning config throttles concurrency well below 512 threads.
        assert!(result.best_config.get("innodb_thread_concurrency") < 100.0);
    }

    #[test]
    fn grid_counts_cells_correctly() {
        let dbms =
            SimulatedDbms::new(InstanceType::B, WorkloadSpec::sysbench(), 0).with_noise(0.0);
        let set = KnobSet::figure1();
        let result = grid_search(&dbms, &set, ResourceKind::Cpu, 4);
        assert_eq!(result.evaluated, 16);
        assert!(result.feasible <= 16);
    }
}
