//! Exhaustive grid search — the §7.3 case study's "known ground-truth"
//! (an 8×8×8 sweep over the three CPU knobs).
//!
//! Two forms: [`grid_search`] is the raw noiseless sweep the case study
//! tables use (no tuning loop, no retries — exact ground truth), and
//! [`GridProposer`]/[`grid_tuning`] runs the same cell enumeration through
//! the shared [`TuningDriver`]/[`EvalEngine`] loop so a grid baseline gets
//! the identical replay/failure/convergence bookkeeping as every other
//! method.

use dbsim::{Configuration, SimulatedDbms};
use restune_core::driver::{Proposal, Proposer, TuningDriver};
use restune_core::engine::{EngineSettings, EvalEngine, HistoryView};
use restune_core::problem::{ResourceKind, SlaConstraints};
use restune_core::resilience::ReplayPolicy;
use restune_core::tuner::{TuningEnvironment, TuningOutcome};
use dbsim::KnobSet;

/// A strategy that enumerates the cells of a `levels^dim` grid in order
/// (wrapping around if the budget exceeds the grid).
pub struct GridProposer {
    levels: usize,
}

impl GridProposer {
    /// A sweep with `levels` levels per knob dimension.
    pub fn new(levels: usize) -> Self {
        assert!(levels >= 2);
        GridProposer { levels }
    }

    /// Cells in a `dim`-dimensional sweep.
    pub fn cells(&self, dim: usize) -> usize {
        self.levels.pow(dim as u32)
    }
}

impl Proposer for GridProposer {
    fn propose(&mut self, view: &HistoryView<'_>, iter: usize, _seed: u64) -> Proposal {
        let dim = view.problem.dim();
        let mut idx = iter % self.cells(dim);
        let point: Vec<f64> = (0..dim)
            .map(|_| {
                let level = idx % self.levels;
                idx /= self.levels;
                level as f64 / (self.levels - 1) as f64
            })
            .collect();
        Proposal::point(point)
    }
}

/// Runs a `levels`-per-dimension grid sweep for `iterations` replays through
/// the shared driver/engine loop and returns the standard outcome shape.
pub fn grid_tuning(env: TuningEnvironment, levels: usize, iterations: usize) -> TuningOutcome {
    let engine = EvalEngine::new(
        env,
        EngineSettings {
            policy: ReplayPolicy::default(),
            convergence_window: 10,
            convergence_epsilon: 0.005,
            seed_default_observation: false,
        },
    );
    TuningDriver::new(engine, GridProposer::new(levels), 0).run_into_outcome(iterations)
}

/// Result of a grid sweep.
#[derive(Debug, Clone)]
pub struct GridResult {
    /// Best feasible configuration.
    pub best_config: Configuration,
    /// Best feasible normalized point.
    pub best_point: Vec<f64>,
    /// Best feasible objective.
    pub best_objective: f64,
    /// Number of grid cells evaluated.
    pub evaluated: usize,
    /// Number of feasible cells.
    pub feasible: usize,
}

/// Sweeps a full `levels^dim` grid (noiseless), returning the best feasible
/// cell under an SLA fixed from the default configuration.
pub fn grid_search(
    dbms: &SimulatedDbms,
    knob_set: &KnobSet,
    resource: ResourceKind,
    levels: usize,
) -> GridResult {
    assert!(levels >= 2);
    let default_obs = dbms.evaluate_noiseless(&Configuration::dba_default());
    let sla = SlaConstraints::from_default_observation(&default_obs);
    let dim = knob_set.dim();
    let cells = levels.pow(dim as u32);
    let base = Configuration::dba_default();

    let mut best: Option<(Vec<f64>, f64)> = None;
    let mut feasible = 0usize;
    for cell in 0..cells {
        let mut idx = cell;
        let point: Vec<f64> = (0..dim)
            .map(|_| {
                let level = idx % levels;
                idx /= levels;
                level as f64 / (levels - 1) as f64
            })
            .collect();
        let config = knob_set.to_configuration(&point, &base);
        let obs = dbms.evaluate_noiseless(&config);
        if sla.is_feasible(&obs) {
            feasible += 1;
            let objective = resource.value(&obs);
            if best.as_ref().map(|(_, v)| objective < *v).unwrap_or(true) {
                best = Some((point, objective));
            }
        }
    }
    let (best_point, best_objective) = best.unwrap_or_else(|| {
        (knob_set.default_point(), resource.value(&default_obs))
    });
    GridResult {
        best_config: knob_set.to_configuration(&best_point, &base),
        best_point,
        best_objective,
        evaluated: cells,
        feasible,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbsim::{InstanceType, WorkloadSpec};

    #[test]
    fn case_study_grid_finds_a_much_better_feasible_config() {
        let dbms =
            SimulatedDbms::new(InstanceType::A, WorkloadSpec::twitter(), 0).with_noise(0.0);
        let result = grid_search(&dbms, &KnobSet::case_study(), ResourceKind::Cpu, 8);
        assert_eq!(result.evaluated, 512);
        assert!(result.feasible > 0);
        let default =
            dbms.evaluate_noiseless(&Configuration::dba_default()).resources.cpu_pct;
        assert!(
            result.best_objective < 0.5 * default,
            "grid best {} vs default {default}",
            result.best_objective
        );
        // The winning config throttles concurrency well below 512 threads.
        assert!(result.best_config.get("innodb_thread_concurrency") < 100.0);
    }

    #[test]
    fn grid_tuning_enumerates_cells_through_the_shared_driver() {
        use restune_core::problem::ResourceKind;
        let env = TuningEnvironment::builder()
            .instance(InstanceType::A)
            .workload(WorkloadSpec::twitter())
            .resource(ResourceKind::Cpu)
            .knob_set(KnobSet::case_study())
            .seed(0)
            .noise(0.0)
            .build();
        let outcome = grid_tuning(env, 2, 8);
        assert_eq!(outcome.history.len(), 8);
        // Cells are visited in row-major order over {0, 1}^3.
        for (cell, r) in outcome.history.iter().enumerate() {
            let expect: Vec<f64> =
                (0..3).map(|d| ((cell >> d) & 1) as f64).collect();
            assert_eq!(r.point, expect, "cell {cell}");
        }
        // The engine's bookkeeping holds: the incumbent is feasible and no
        // worse than the default, and the curve is monotone.
        assert!(outcome.best_objective.unwrap() <= outcome.default_obj_value);
        for pair in outcome.best_curve().windows(2) {
            assert!(pair[1] <= pair[0] + 1e-9);
        }
    }

    #[test]
    fn grid_counts_cells_correctly() {
        let dbms =
            SimulatedDbms::new(InstanceType::B, WorkloadSpec::sysbench(), 0).with_noise(0.0);
        let set = KnobSet::figure1();
        let result = grid_search(&dbms, &set, ResourceKind::Cpu, 4);
        assert_eq!(result.evaluated, 16);
        assert!(result.feasible <= 16);
    }
}
