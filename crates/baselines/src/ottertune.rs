//! OtterTune-w-Con (§7): OtterTune's machine-learning pipeline with its
//! workload-mapping transfer, and the acquisition replaced by ResTune's CEI
//! so it can honor the SLA.
//!
//! "Unlike meta-learning, OtterTune identifies the most similar workload from
//! its repository based on the distance between the internal metrics. It uses
//! the matched data for target workload in a single Gaussian Process model."
//!
//! The failure mode ResTune's §7.2.3 analysis predicts is reproduced here
//! structurally: internal metrics scale with hardware (pages/s, context
//! switches/s, threads running), so *absolute* distances match the wrong
//! workload across instance types, and there is no mechanism to stop trusting
//! a matched workload (negative transfer).
//!
//! The strategy is an [`OtterTuneProposer`] on the shared
//! [`TuningDriver`]/[`EvalEngine`] loop, so replay retries, failure
//! penalties, and incumbent/convergence bookkeeping are identical to every
//! other method's.

use restune_core::acquisition::ConstrainedExpectedImprovement;
use restune_core::driver::{Proposal, ProposalTiming, Proposer, TuningDriver};
use restune_core::engine::{EngineSettings, EvalEngine, HistoryView};
use restune_core::lhs::latin_hypercube;
use restune_core::repository::DataRepository;
use restune_core::resilience::ReplayPolicy;
use restune_core::surrogate::{GpTaskModel, TaskSurrogate};
use restune_core::tuner::{RestuneConfig, TuningEnvironment, TuningOutcome};

/// The OtterTune strategy: LHS bootstrap, then one merged GP over target +
/// matched-workload data, optimized with CEI.
pub struct OtterTuneProposer {
    config: RestuneConfig,
    repository: DataRepository,
    lhs_plan: Vec<Vec<f64>>,
    /// The task_id matched at the latest iteration (for analysis output).
    pub last_match: Option<String>,
}

impl OtterTuneProposer {
    /// Mean of the target's observed internal metric vectors.
    fn target_signature(&self, view: &HistoryView<'_>) -> Vec<f64> {
        let observed: Vec<&Vec<f64>> =
            view.metrics.iter().filter(|m| !m.is_empty()).collect();
        let n = observed.len();
        if n == 0 {
            return view.default_observation.internal.to_vec();
        }
        let dim = observed[0].len();
        let mut acc = vec![0.0; dim];
        for m in observed {
            for (a, v) in acc.iter_mut().zip(m) {
                *a += v;
            }
        }
        for a in &mut acc {
            *a /= n as f64;
        }
        acc
    }

    /// OtterTune's workload mapping: nearest repository task by Euclidean
    /// distance between internal-metric signatures (each dimension scaled by
    /// the repository-wide standard deviation, mirroring OtterTune's metric
    /// binning — note the *values* still carry hardware scale).
    fn match_task(&self, view: &HistoryView<'_>) -> Option<usize> {
        if self.repository.is_empty() {
            return None;
        }
        let target = self.target_signature(view);
        let dim = target.len();
        // Repository-wide per-dimension std for scaling.
        let mut all: Vec<Vec<f64>> = Vec::new();
        for t in self.repository.tasks() {
            all.push(t.mean_metrics());
        }
        let mut stds = vec![1e-9_f64; dim];
        for (d, std) in stds.iter_mut().enumerate() {
            let col: Vec<f64> = all.iter().map(|m| m[d]).collect();
            *std = linalg::vector::std_dev(&col).max(1e-9);
        }
        let mut best: Option<(usize, f64)> = None;
        for (i, sig) in all.iter().enumerate() {
            let mut d2 = 0.0;
            for d in 0..dim {
                let diff = (sig[d] - target[d]) / stds[d];
                d2 += diff * diff;
            }
            if best.map(|(_, bd)| d2 < bd).unwrap_or(true) {
                best = Some((i, d2));
            }
        }
        best.map(|(i, _)| i)
    }
}

impl Proposer for OtterTuneProposer {
    fn propose(&mut self, view: &HistoryView<'_>, iter: usize, _seed: u64) -> Proposal {
        if iter < self.config.init_iters {
            return Proposal::point(self.lhs_plan[iter].clone());
        }

        let model_span = trace::span!("model_update");
        // Merge matched workload data (same knob space) with target data.
        let mut points = view.points.to_vec();
        points.push(view.default_point.to_vec());
        let mut res = view.res.to_vec();
        res.push(view.default_objective);
        let mut tps = view.tps.to_vec();
        tps.push(view.default_observation.tps);
        let mut lat = view.lat.to_vec();
        lat.push(view.default_observation.p99_ms);
        if let Some(idx) = self.match_task(view) {
            let task = &self.repository.tasks()[idx];
            self.last_match = Some(task.task_id.clone());
            if task.knob_names == view.problem.knob_set.names()
                && task.space_id == view.problem.space.id
            {
                for o in &task.observations {
                    points.push(o.point.clone());
                    res.push(o.res);
                    tps.push(o.tps);
                    lat.push(o.lat);
                }
            }
        }
        let mut gp_config = self.config.gp.clone();
        gp_config.optimize_hypers = self.config.gp.optimize_hypers
            && (points.len() <= 40 || iter.is_multiple_of(self.config.refit_hypers_every));
        let model = GpTaskModel::fit(&points, &res, &tps, &lat, &gp_config)
            .expect("merged surrogate fit");
        let model_update_s = model_span.finish_s();

        let recommendation_span = trace::span!("recommendation");
        // CEI with thresholds at the merged model's default-point prediction.
        let default_pred = model.predict(view.default_point);
        let sla = view.problem.constraints;
        let tps_floor =
            default_pred.tps.mean - sla.tolerance * sla.min_tps / model.scalers.tps.std;
        let lat_ceiling =
            default_pred.lat.mean + sla.tolerance * sla.max_p99_ms / model.scalers.lat.std;
        // Incumbent: best feasible target observation.
        let mut best_feasible: Option<(Vec<f64>, f64)> = None;
        for (i, p) in view.points.iter().enumerate() {
            let feasible =
                view.tps[i] >= sla.tps_floor() && view.lat[i] <= sla.lat_ceiling();
            if feasible
                && best_feasible.as_ref().map(|(_, v)| view.res[i] < *v).unwrap_or(true)
            {
                best_feasible = Some((p.clone(), view.res[i]));
            }
        }
        let (anchors, incumbent) = match &best_feasible {
            Some((p, _)) => (vec![p.clone()], Some(model.predict(p).res.mean)),
            None => (vec![view.default_point.to_vec()], {
                Some(model.predict(view.default_point).res.mean)
            }),
        };
        let cei =
            ConstrainedExpectedImprovement { best_feasible: incumbent, tps_floor, lat_ceiling };
        // OtterTune keeps its own published seeding schedule (it predates the
        // driver's per-iteration seed).
        let seed = self.config.seed.wrapping_add(iter as u64).wrapping_mul(0x51);
        let point = self
            .config
            .optimizer
            .optimize(view.problem.dim(), &anchors, seed, |p| cei.value(&model.predict(p)));
        let recommendation_s = recommendation_span.finish_s();
        Proposal {
            point,
            weights: None,
            timing: ProposalTiming { model_update_s, recommendation_s, ..Default::default() },
        }
    }
}

/// The OtterTune-with-constraints baseline.
pub struct OtterTuneWithConstraints {
    driver: TuningDriver<OtterTuneProposer>,
}

impl OtterTuneWithConstraints {
    /// Creates a run on `env` transferring from `repository`.
    pub fn new(env: TuningEnvironment, config: RestuneConfig, repository: DataRepository) -> Self {
        if config.trace {
            trace::enable();
        }
        let lhs_plan = latin_hypercube(config.init_iters, env.search_dim(), config.seed ^ 0x07);
        let engine = EvalEngine::new(
            env,
            EngineSettings {
                policy: ReplayPolicy {
                    max_retries: config.max_retries,
                    backoff_s: config.retry_backoff_s,
                },
                convergence_window: config.convergence_window,
                convergence_epsilon: config.convergence_epsilon,
                // OtterTune keeps the default out of its observed columns and
                // merges it into the GP explicitly, as published.
                seed_default_observation: false,
            },
        );
        let seed = config.seed;
        let proposer = OtterTuneProposer { config, repository, lhs_plan, last_match: None };
        OtterTuneWithConstraints { driver: TuningDriver::new(engine, proposer, seed) }
    }

    /// One tuning iteration.
    pub fn step(&mut self) {
        self.driver.step();
    }

    /// Runs `iterations` steps and summarizes.
    pub fn run(&mut self, iterations: usize) -> TuningOutcome {
        self.driver.run(iterations)
    }

    /// Runs `iterations` steps and consumes the run into its outcome without
    /// cloning the history.
    pub fn run_into_outcome(self, iterations: usize) -> TuningOutcome {
        self.driver.run_into_outcome(iterations)
    }

    /// The task_id matched at the latest iteration (for analysis output).
    pub fn last_match(&self) -> Option<&str> {
        self.driver.proposer().last_match.as_deref()
    }

    /// Decomposes into the underlying driver (fleet tenants step it
    /// themselves).
    pub fn into_driver(self) -> TuningDriver<OtterTuneProposer> {
        self.driver
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbsim::{InstanceType, KnobSet, SimulatedDbms, WorkloadSpec};
    use restune_core::acquisition::AcquisitionOptimizer;
    use restune_core::problem::ResourceKind;
    use restune_core::repository::TaskRecord;
    use workload::WorkloadCharacterizer;

    fn quick_config(seed: u64) -> RestuneConfig {
        RestuneConfig {
            optimizer: AcquisitionOptimizer { n_candidates: 250, n_local: 50, local_sigma: 0.1 },
            gp: gp::GpConfig { restarts: 1, adam_iters: 12, ..Default::default() },
            seed,
            ..Default::default()
        }
    }

    fn small_repo() -> DataRepository {
        let characterizer = WorkloadCharacterizer::train_default(0);
        let mut repo = DataRepository::new();
        for (i, w) in [WorkloadSpec::twitter(), WorkloadSpec::sysbench()].into_iter().enumerate()
        {
            let mut dbms = SimulatedDbms::new(InstanceType::A, w, 100 + i as u64);
            repo.add(TaskRecord::collect(
                &mut dbms,
                &KnobSet::case_study(),
                ResourceKind::Cpu,
                &characterizer,
                15,
                200 + i as u64,
            ));
        }
        repo
    }

    #[test]
    fn ottertune_improves_over_default_with_matched_history() {
        let env = TuningEnvironment::builder()
            .instance(InstanceType::A)
            .workload(WorkloadSpec::twitter())
            .resource(ResourceKind::Cpu)
            .knob_set(KnobSet::case_study())
            .seed(4)
            .build();
        let mut ot = OtterTuneWithConstraints::new(env, quick_config(4), small_repo());
        let outcome = ot.run(20);
        assert!(outcome.best_objective.unwrap() < outcome.default_obj_value);
        // It matched some workload after the bootstrap phase.
        assert!(ot.last_match().is_some());
    }

    #[test]
    fn works_with_an_empty_repository() {
        let env = TuningEnvironment::builder()
            .instance(InstanceType::B)
            .workload(WorkloadSpec::twitter())
            .resource(ResourceKind::Cpu)
            .knob_set(KnobSet::case_study())
            .seed(5)
            .build();
        let mut ot =
            OtterTuneWithConstraints::new(env, quick_config(5), DataRepository::new());
        let outcome = ot.run(13);
        assert_eq!(outcome.history.len(), 13);
        assert!(ot.last_match().is_none());
    }
}
