//! A uniform dispatcher over every tuning method in the paper's evaluation,
//! so experiment harnesses can sweep methods with one call.

use crate::cdbtune::CdbTuneWithConstraints;
use crate::ituned::ITuned;
use crate::ottertune::OtterTuneWithConstraints;
use restune_core::driver::{BoxProposer, TuningDriver};
use restune_core::repository::DataRepository;
use restune_core::tuner::{
    InitStrategy, RestuneConfig, TuningEnvironment, TuningOutcome, TuningSession,
};

/// Every method compared in §7.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// Full ResTune (CEI + meta-learning).
    Restune,
    /// ResTune without the data repository (learns from scratch).
    RestuneWithoutML,
    /// ResTune with LHS replacing workload-characterization initialization
    /// (the Figure 6(b) ablation).
    RestuneWithoutWorkload,
    /// iTuned: unconstrained EI.
    ITuned,
    /// OtterTune with CEI and workload mapping.
    OtterTuneWithConstraints,
    /// CDBTune with the SLA-gated resource reward.
    CdbTuneWithConstraints,
}

impl Method {
    /// The five non-default methods of Figure 3, in legend order.
    pub const FIGURE3: [Method; 5] = [
        Method::Restune,
        Method::RestuneWithoutML,
        Method::OtterTuneWithConstraints,
        Method::CdbTuneWithConstraints,
        Method::ITuned,
    ];

    /// Display name matching the paper's legends.
    pub fn name(&self) -> &'static str {
        match self {
            Method::Restune => "ResTune",
            Method::RestuneWithoutML => "ResTune-w/o-ML",
            Method::RestuneWithoutWorkload => "ResTune-w/o-Workload",
            Method::ITuned => "iTuned",
            Method::OtterTuneWithConstraints => "OtterTune-w-Con",
            Method::CdbTuneWithConstraints => "CDBTune-w-Con",
        }
    }
}

/// Which historical tasks a transfer-learning method may use — the paper's
/// three evaluation settings (§7 "Data Repository").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Setting {
    /// All 34 historical tasks, target's own included.
    Original,
    /// Hold out the target workload's tasks.
    VaryingWorkloads,
    /// Hold out tasks collected on the target's instance type.
    VaryingHardware,
}

/// Shared context for a method run.
pub struct MethodContext<'a> {
    /// Algorithm configuration (budgets, seed).
    pub config: RestuneConfig,
    /// Historical repository (used by ResTune and OtterTune-w-Con).
    pub repository: Option<&'a DataRepository>,
    /// Pre-fitted base learners (avoids refitting 34 GPs per run); filtered
    /// by `setting` like the repository.
    pub prepared_learners: Option<&'a [restune_core::meta::BaseLearner]>,
    /// Evaluation setting filter.
    pub setting: Setting,
    /// Target meta-feature (required for ResTune's static weights).
    pub target_meta_feature: Vec<f64>,
}

impl MethodContext<'_> {
    /// Base learners visible under the setting filter.
    fn base_learners(
        &self,
        env: &TuningEnvironment,
    ) -> Vec<restune_core::meta::BaseLearner> {
        let target_workload = env.dbms.workload().name.clone();
        let target_instance = env.dbms.instance();
        let keep = |workload: &str, instance: dbsim::InstanceType| match self.setting {
            Setting::Original => true,
            Setting::VaryingWorkloads => workload != target_workload,
            Setting::VaryingHardware => instance != target_instance,
        };
        if let Some(prepared) = self.prepared_learners {
            return prepared
                .iter()
                .filter(|l| keep(&l.workload, l.instance))
                .cloned()
                .collect();
        }
        let Some(repo) = self.repository else { return Vec::new() };
        let mut gp_config = self.config.gp.clone();
        // Historical learners are frozen; fit their hyperparameters once,
        // with a modest budget.
        gp_config.optimize_hypers = true;
        repo.base_learners(&gp_config, |t| keep(&t.workload, t.instance))
    }

    /// Repository filtered the same way, for OtterTune's mapping.
    fn filtered_repository(&self, env: &TuningEnvironment) -> DataRepository {
        let mut out = DataRepository::new();
        if let Some(repo) = self.repository {
            let target_workload = env.dbms.workload().name.clone();
            let target_instance = env.dbms.instance();
            for t in repo.tasks() {
                let keep = match self.setting {
                    Setting::Original => true,
                    Setting::VaryingWorkloads => t.workload != target_workload,
                    Setting::VaryingHardware => t.instance != target_instance,
                };
                if keep {
                    out.add(t.clone());
                }
            }
        }
        out
    }
}

/// Builds `method`'s ready-to-run driver on `env`, type-erased behind
/// [`BoxProposer`]. This is the unit the fleet service schedules: every
/// method becomes a tenant the same way, and stepping the returned driver is
/// bit-identical to [`run_method`] with the same inputs.
pub fn method_driver(
    method: Method,
    env: TuningEnvironment,
    ctx: &MethodContext<'_>,
) -> TuningDriver<BoxProposer> {
    match method {
        Method::Restune => {
            let learners = ctx.base_learners(&env);
            TuningSession::with_base_learners(
                env,
                ctx.config.clone(),
                learners,
                ctx.target_meta_feature.clone(),
            )
            .into_driver()
            .boxed()
        }
        Method::RestuneWithoutML => {
            TuningSession::new(env, ctx.config.clone()).into_driver().boxed()
        }
        Method::RestuneWithoutWorkload => {
            let learners = ctx.base_learners(&env);
            let mut config = ctx.config.clone();
            config.init_strategy = InitStrategy::Lhs;
            TuningSession::with_base_learners(
                env,
                config,
                learners,
                ctx.target_meta_feature.clone(),
            )
            .into_driver()
            .boxed()
        }
        Method::ITuned => ITuned::new(env, ctx.config.clone()).into_driver().boxed(),
        Method::OtterTuneWithConstraints => {
            let repo = ctx.filtered_repository(&env);
            OtterTuneWithConstraints::new(env, ctx.config.clone(), repo).into_driver().boxed()
        }
        Method::CdbTuneWithConstraints => {
            CdbTuneWithConstraints::new(env, ctx.config.clone()).into_driver().boxed()
        }
    }
}

/// Runs `method` on `env` for `iterations` and returns its outcome.
pub fn run_method(
    method: Method,
    env: TuningEnvironment,
    iterations: usize,
    ctx: &MethodContext<'_>,
) -> TuningOutcome {
    // Every arm runs through the shared `TuningDriver`/`EvalEngine` loop;
    // the consuming `run_into_outcome` renders the final outcome without
    // cloning the history.
    method_driver(method, env, ctx).run_into_outcome(iterations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbsim::{InstanceType, KnobSet, WorkloadSpec};
    use restune_core::acquisition::AcquisitionOptimizer;
    use restune_core::problem::ResourceKind;

    fn env(seed: u64) -> TuningEnvironment {
        TuningEnvironment::builder()
            .instance(InstanceType::A)
            .workload(WorkloadSpec::twitter())
            .resource(ResourceKind::Cpu)
            .knob_set(KnobSet::case_study())
            .seed(seed)
            .build()
    }

    fn quick_ctx() -> MethodContext<'static> {
        MethodContext {
            config: RestuneConfig {
                optimizer: AcquisitionOptimizer {
                    n_candidates: 200,
                    n_local: 40,
                    local_sigma: 0.1,
                },
                gp: gp::GpConfig { restarts: 1, adam_iters: 10, ..Default::default() },
                dynamic_samples: 8,
                init_iters: 4,
                seed: 1,
                ..Default::default()
            },
            repository: None,
            prepared_learners: None,
            setting: Setting::Original,
            target_meta_feature: vec![0.2; 5],
        }
    }

    #[test]
    fn every_method_runs_end_to_end() {
        for method in [
            Method::Restune,
            Method::RestuneWithoutML,
            Method::RestuneWithoutWorkload,
            Method::ITuned,
            Method::OtterTuneWithConstraints,
            Method::CdbTuneWithConstraints,
        ] {
            let outcome = run_method(method, env(7), 6, &quick_ctx());
            assert_eq!(outcome.history.len(), 6, "{}", method.name());
            assert!(outcome.default_obj_value > 0.0);
        }
    }

    #[test]
    fn names_match_the_paper_legends() {
        assert_eq!(Method::Restune.name(), "ResTune");
        assert_eq!(Method::OtterTuneWithConstraints.name(), "OtterTune-w-Con");
        assert_eq!(Method::FIGURE3.len(), 5);
    }
}
