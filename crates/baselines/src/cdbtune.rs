//! CDBTune-w-Con (§7): CDBTune's DDPG agent with the reward function
//! modified for resource-oriented tuning.
//!
//! The paper's two modifications:
//! 1. latency in the original reward is replaced with resource utilization,
//! 2. rewards are gated by the SLA — a positive reward (resource decreased)
//!    that violates the SLA is zeroed, and a negative reward (resource
//!    increased) that still meets the SLA is zeroed.
//!
//! The state is the internal-metrics vector (normalized by the default
//! observation so the network sees O(1) inputs); the action is the
//! normalized knob vector.

use crate::loop_support::EvalLoop;
use nn::{Ddpg, DdpgConfig, Transition};
use restune_core::tuner::{RestuneConfig, TuningEnvironment, TuningOutcome};

/// The CDBTune-with-constraints baseline.
pub struct CdbTuneWithConstraints {
    eval: EvalLoop,
    agent: Ddpg,
    state_scale: Vec<f64>,
    prev: Option<(Vec<f64>, f64)>,
    /// Gradient steps per evaluation (CDBTune trains on each observation).
    train_steps: usize,
}

impl CdbTuneWithConstraints {
    /// Creates a run on `env`. `config` contributes only the seed; the agent
    /// hyperparameters follow CDBTune's published defaults scaled down to the
    /// tuning budget.
    pub fn new(env: TuningEnvironment, config: RestuneConfig) -> Self {
        if config.trace {
            trace::enable();
        }
        let eval = EvalLoop::new(env);
        let state_dim = dbsim::InternalMetrics::DIM;
        let action_dim = eval.problem.knob_set.dim();
        let agent = Ddpg::new(
            state_dim,
            action_dim,
            DdpgConfig {
                hidden: 48,
                batch: 16,
                noise: 0.5,
                noise_decay: 0.99,
                seed: config.seed,
                ..Default::default()
            },
        );
        // Normalize states by the default observation's metric magnitudes.
        let state_scale: Vec<f64> = eval
            .default_observation
            .internal
            .to_vec()
            .iter()
            .map(|v| v.abs().max(1.0))
            .collect();
        CdbTuneWithConstraints { eval, agent, state_scale, prev: None, train_steps: 4 }
    }

    fn normalize_state(&self, metrics: &[f64]) -> Vec<f64> {
        metrics.iter().zip(&self.state_scale).map(|(v, s)| (v / s).clamp(-5.0, 5.0)).collect()
    }

    /// The modified CDBTune reward (§7): quadratic shaping on the improvement
    /// over the initial (default) resource usage, modulated by the
    /// step-over-step change, then SLA-gated.
    fn reward(&self, objective: f64, prev_objective: f64, feasible: bool) -> f64 {
        let initial = self.eval.outcome().default_obj_value.max(1e-9);
        let delta0 = (initial - objective) / initial;
        let delta_prev = (prev_objective - objective) / prev_objective.max(1e-9);
        let r = if delta0 > 0.0 {
            ((1.0 + delta0).powi(2) - 1.0) * (1.0 + delta_prev).abs()
        } else {
            -(((1.0 - delta0).powi(2) - 1.0) * (1.0 - delta_prev).abs())
        };
        // SLA gating: zero out rewards whose sign disagrees with feasibility.
        if (r > 0.0 && !feasible) || (r < 0.0 && feasible) {
            0.0
        } else {
            r
        }
    }

    /// One tuning iteration: act → apply → observe → reward → train.
    pub fn step(&mut self) {
        let recommendation_span = trace::span!("recommendation");
        let state = match &self.prev {
            Some((s, _)) => s.clone(),
            None => self.normalize_state(&self.eval.default_observation.internal.to_vec()),
        };
        let action = self.agent.act_noisy(&state);
        let recommendation_s = recommendation_span.finish_s();

        let prev_objective = self
            .prev
            .as_ref()
            .map(|(_, o)| *o)
            .unwrap_or_else(|| self.eval.outcome().default_obj_value);

        let (objective, feasible, metrics) = {
            let record = self.eval.evaluate(action.clone(), 0.0, recommendation_s);
            (record.objective, record.feasible, record.observation.internal.to_vec())
        };
        let next_state = self.normalize_state(&metrics);

        let model_span = trace::span!("model_update");
        let reward = self.reward(objective, prev_objective, feasible);
        self.agent.observe(Transition {
            state,
            action,
            reward,
            next_state: next_state.clone(),
            done: false,
        });
        for _ in 0..self.train_steps {
            self.agent.train_step();
        }
        let model_update_s = model_span.finish_s();
        // Attribute training time to the stored record.
        if let Some(last) = self.eval_history_last_mut() {
            last.timing.model_update_s = model_update_s;
        }
        self.prev = Some((next_state, objective));
    }

    fn eval_history_last_mut(&mut self) -> Option<&mut restune_core::tuner::IterationRecord> {
        // EvalLoop exposes history only via outcome(); patch through a small
        // accessor instead of cloning the whole history.
        self.eval.history_last_mut()
    }

    /// Runs `iterations` steps and summarizes.
    pub fn run(&mut self, iterations: usize) -> TuningOutcome {
        for _ in 0..iterations {
            self.step();
        }
        self.eval.outcome()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbsim::{InstanceType, KnobSet, WorkloadSpec};
    use restune_core::problem::ResourceKind;

    fn env(seed: u64) -> TuningEnvironment {
        TuningEnvironment::builder()
            .instance(InstanceType::A)
            .workload(WorkloadSpec::twitter())
            .resource(ResourceKind::Cpu)
            .knob_set(KnobSet::case_study())
            .seed(seed)
            .build()
    }

    #[test]
    fn runs_and_records_history() {
        let mut agent = CdbTuneWithConstraints::new(env(1), RestuneConfig::default());
        let outcome = agent.run(12);
        assert_eq!(outcome.history.len(), 12);
        assert!(outcome.best_objective.is_some());
    }

    #[test]
    fn reward_gating_matches_the_paper() {
        let agent = CdbTuneWithConstraints::new(env(2), RestuneConfig::default());
        let initial = agent.eval.outcome().default_obj_value;
        // Resource decreased but SLA violated -> zero.
        assert_eq!(agent.reward(initial * 0.5, initial, false), 0.0);
        // Resource increased but SLA fine -> zero.
        assert_eq!(agent.reward(initial * 1.5, initial, true), 0.0);
        // Resource decreased and feasible -> positive.
        assert!(agent.reward(initial * 0.5, initial, true) > 0.0);
        // Resource increased and infeasible -> negative.
        assert!(agent.reward(initial * 1.5, initial, false) < 0.0);
    }
}
