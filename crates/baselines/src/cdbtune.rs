//! CDBTune-w-Con (§7): CDBTune's DDPG agent with the reward function
//! modified for resource-oriented tuning.
//!
//! The paper's two modifications:
//! 1. latency in the original reward is replaced with resource utilization,
//! 2. rewards are gated by the SLA — a positive reward (resource decreased)
//!    that violates the SLA is zeroed, and a negative reward (resource
//!    increased) that still meets the SLA is zeroed.
//!
//! The state is the internal-metrics vector (normalized by the default
//! observation so the network sees O(1) inputs); the action is the
//! normalized knob vector.
//!
//! The agent is a [`CdbTuneProposer`] on the shared
//! [`TuningDriver`]/[`EvalEngine`] loop: `propose` runs the actor
//! (recommendation phase) and the post-replay training step happens in the
//! [`Proposer::observe`] hook, whose wall-clock is attributed to the
//! record's `model_update_s` *before* it is committed — no patching of
//! stored records.

use nn::{Ddpg, DdpgConfig, Transition};
use restune_core::driver::{Proposal, ProposalTiming, Proposer, TuningDriver};
use restune_core::engine::{EngineSettings, EvalEngine, HistoryView, IterationRecord};
use restune_core::resilience::ReplayPolicy;
use restune_core::tuner::{RestuneConfig, TuningEnvironment, TuningOutcome};

/// The CDBTune strategy: a DDPG actor-critic proposing knob vectors, trained
/// on the SLA-gated resource reward after each replay.
pub struct CdbTuneProposer {
    agent: Ddpg,
    state_scale: Vec<f64>,
    default_state: Vec<f64>,
    default_objective: f64,
    prev: Option<(Vec<f64>, f64)>,
    /// The (state, action, prev_objective) of the in-flight proposal,
    /// consumed by `observe` once the replay resolves.
    pending: Option<(Vec<f64>, Vec<f64>, f64)>,
    /// Gradient steps per evaluation (CDBTune trains on each observation).
    train_steps: usize,
}

impl CdbTuneProposer {
    fn normalize_state(&self, metrics: &[f64]) -> Vec<f64> {
        metrics.iter().zip(&self.state_scale).map(|(v, s)| (v / s).clamp(-5.0, 5.0)).collect()
    }

    /// The modified CDBTune reward (§7): quadratic shaping on the improvement
    /// over the initial (default) resource usage, modulated by the
    /// step-over-step change, then SLA-gated.
    fn reward(&self, objective: f64, prev_objective: f64, feasible: bool) -> f64 {
        let initial = self.default_objective.max(1e-9);
        let delta0 = (initial - objective) / initial;
        let delta_prev = (prev_objective - objective) / prev_objective.max(1e-9);
        let r = if delta0 > 0.0 {
            ((1.0 + delta0).powi(2) - 1.0) * (1.0 + delta_prev).abs()
        } else {
            -(((1.0 - delta0).powi(2) - 1.0) * (1.0 - delta_prev).abs())
        };
        // SLA gating: zero out rewards whose sign disagrees with feasibility.
        if (r > 0.0 && !feasible) || (r < 0.0 && feasible) {
            0.0
        } else {
            r
        }
    }
}

impl Proposer for CdbTuneProposer {
    fn propose(&mut self, _view: &HistoryView<'_>, _iter: usize, _seed: u64) -> Proposal {
        let recommendation_span = trace::span!("recommendation");
        let state = match &self.prev {
            Some((s, _)) => s.clone(),
            None => self.default_state.clone(),
        };
        let action = self.agent.act_noisy(&state);
        let recommendation_s = recommendation_span.finish_s();
        let prev_objective =
            self.prev.as_ref().map(|(_, o)| *o).unwrap_or(self.default_objective);
        self.pending = Some((state, action.clone(), prev_objective));
        Proposal {
            point: action,
            weights: None,
            timing: ProposalTiming { recommendation_s, ..Default::default() },
        }
    }

    fn observe(&mut self, _view: &HistoryView<'_>, record: &IterationRecord) -> f64 {
        let Some((state, action, prev_objective)) = self.pending.take() else {
            return 0.0;
        };
        let next_state = self.normalize_state(&record.observation.internal.to_vec());

        let model_span = trace::span!("model_update");
        let reward = self.reward(record.objective, prev_objective, record.feasible);
        self.agent.observe(Transition {
            state,
            action,
            reward,
            next_state: next_state.clone(),
            done: false,
        });
        for _ in 0..self.train_steps {
            self.agent.train_step();
        }
        let model_update_s = model_span.finish_s();
        self.prev = Some((next_state, record.objective));
        model_update_s
    }
}

/// The CDBTune-with-constraints baseline.
pub struct CdbTuneWithConstraints {
    driver: TuningDriver<CdbTuneProposer>,
}

impl CdbTuneWithConstraints {
    /// Creates a run on `env`. `config` contributes the seed, retry policy,
    /// and convergence window; the agent hyperparameters follow CDBTune's
    /// published defaults scaled down to the tuning budget.
    pub fn new(env: TuningEnvironment, config: RestuneConfig) -> Self {
        if config.trace {
            trace::enable();
        }
        let action_dim = env.search_dim();
        let engine = EvalEngine::new(
            env,
            EngineSettings {
                policy: ReplayPolicy {
                    max_retries: config.max_retries,
                    backoff_s: config.retry_backoff_s,
                },
                convergence_window: config.convergence_window,
                convergence_epsilon: config.convergence_epsilon,
                // The RL agent has no surrogate to seed; its state stream
                // starts from the default observation instead.
                seed_default_observation: false,
            },
        );
        let state_dim = dbsim::InternalMetrics::DIM;
        let agent = Ddpg::new(
            state_dim,
            action_dim,
            DdpgConfig {
                hidden: 48,
                batch: 16,
                noise: 0.5,
                noise_decay: 0.99,
                seed: config.seed,
                ..Default::default()
            },
        );
        // Normalize states by the default observation's metric magnitudes.
        let default_metrics = engine.default_observation().internal.to_vec();
        let state_scale: Vec<f64> =
            default_metrics.iter().map(|v| v.abs().max(1.0)).collect();
        let default_state: Vec<f64> = default_metrics
            .iter()
            .zip(&state_scale)
            .map(|(v, s)| (v / s).clamp(-5.0, 5.0))
            .collect();
        let proposer = CdbTuneProposer {
            agent,
            state_scale,
            default_state,
            default_objective: engine.default_objective(),
            prev: None,
            pending: None,
            train_steps: 4,
        };
        CdbTuneWithConstraints { driver: TuningDriver::new(engine, proposer, config.seed) }
    }

    /// One tuning iteration: act → apply → observe → reward → train.
    pub fn step(&mut self) {
        self.driver.step();
    }

    /// Runs `iterations` steps and summarizes.
    pub fn run(&mut self, iterations: usize) -> TuningOutcome {
        self.driver.run(iterations)
    }

    /// Runs `iterations` steps and consumes the run into its outcome without
    /// cloning the history.
    pub fn run_into_outcome(self, iterations: usize) -> TuningOutcome {
        self.driver.run_into_outcome(iterations)
    }

    /// Decomposes into the underlying driver (fleet tenants step it
    /// themselves).
    pub fn into_driver(self) -> TuningDriver<CdbTuneProposer> {
        self.driver
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbsim::{InstanceType, KnobSet, WorkloadSpec};
    use restune_core::problem::ResourceKind;

    fn env(seed: u64) -> TuningEnvironment {
        TuningEnvironment::builder()
            .instance(InstanceType::A)
            .workload(WorkloadSpec::twitter())
            .resource(ResourceKind::Cpu)
            .knob_set(KnobSet::case_study())
            .seed(seed)
            .build()
    }

    #[test]
    fn runs_and_records_history() {
        let mut agent = CdbTuneWithConstraints::new(env(1), RestuneConfig::default());
        let outcome = agent.run(12);
        assert_eq!(outcome.history.len(), 12);
        assert!(outcome.best_objective.is_some());
    }

    #[test]
    fn reward_gating_matches_the_paper() {
        let agent = CdbTuneWithConstraints::new(env(2), RestuneConfig::default());
        let proposer = agent.driver.proposer();
        let initial = agent.driver.engine().default_objective();
        // Resource decreased but SLA violated -> zero.
        assert_eq!(proposer.reward(initial * 0.5, initial, false), 0.0);
        // Resource increased but SLA fine -> zero.
        assert_eq!(proposer.reward(initial * 1.5, initial, true), 0.0);
        // Resource decreased and feasible -> positive.
        assert!(proposer.reward(initial * 0.5, initial, true) > 0.0);
        // Resource increased and infeasible -> negative.
        assert!(proposer.reward(initial * 1.5, initial, false) < 0.0);
    }
}
