//! iTuned (Duan et al., VLDB 2009), adapted per §7: "We modified iTuned by
//! changing its objective from maximizing the throughput to minimizing the
//! resource utilization, with the algorithm unmodified."
//!
//! Concretely: a plain GP surrogate with the unconstrained Expected
//! Improvement acquisition. Because the algorithm never sees the SLA, its EI
//! chases the global resource minimum — which for DBMS knobs is a throttled,
//! throughput-collapsing corner — so its best *feasible* result stays poor
//! (exactly the failure mode Figure 3 shows).

use restune_core::acquisition::AcquisitionKind;
use restune_core::tuner::{RestuneConfig, TuningEnvironment, TuningOutcome, TuningSession};

/// The iTuned baseline.
pub struct ITuned {
    session: TuningSession,
}

impl ITuned {
    /// Creates an iTuned run on `env`. `config` supplies GP/optimizer budgets
    /// and the seed; the acquisition is forced to unconstrained EI and
    /// meta-learning is off (iTuned has no repository).
    pub fn new(env: TuningEnvironment, mut config: RestuneConfig) -> Self {
        config.acquisition = AcquisitionKind::ExpectedImprovement;
        ITuned { session: TuningSession::new(env, config) }
    }

    /// Runs `iterations` tuning steps.
    pub fn run(&mut self, iterations: usize) -> TuningOutcome {
        self.session.run(iterations)
    }

    /// Runs `iterations` steps and consumes the run into its outcome without
    /// cloning the history.
    pub fn run_into_outcome(self, iterations: usize) -> TuningOutcome {
        self.session.run_into_outcome(iterations)
    }

    /// Decomposes into the underlying driver (fleet tenants step it
    /// themselves).
    pub fn into_driver(self) -> restune_core::TuningDriver<restune_core::RestuneProposer> {
        self.session.into_driver()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbsim::{InstanceType, KnobSet, WorkloadSpec};
    use restune_core::acquisition::AcquisitionOptimizer;
    use restune_core::problem::ResourceKind;

    fn outcome_config() -> RestuneConfig {
        RestuneConfig {
            optimizer: AcquisitionOptimizer { n_candidates: 300, n_local: 50, local_sigma: 0.1 },
            gp: gp::GpConfig { restarts: 1, adam_iters: 15, ..Default::default() },
            seed: 3,
            ..Default::default()
        }
    }

    #[test]
    fn ituned_chases_infeasible_minima() {
        let env = TuningEnvironment::builder()
            .instance(InstanceType::A)
            .workload(WorkloadSpec::twitter())
            .resource(ResourceKind::Cpu)
            .knob_set(KnobSet::case_study())
            .seed(3)
            .build();
        let config = RestuneConfig {
            optimizer: AcquisitionOptimizer { n_candidates: 300, n_local: 50, local_sigma: 0.1 },
            gp: gp::GpConfig { restarts: 1, adam_iters: 15, ..Default::default() },
            seed: 3,
            ..Default::default()
        };
        let mut ituned = ITuned::new(env, config);
        let outcome = ituned.run(25);
        // After the LHS bootstrap, EI recommends SLA violations (the
        // session's stagnation safeguard occasionally interleaves random
        // exploration, so not every pick is EI's — require a clear pattern,
        // not a fixed count).
        let infeasible =
            outcome.history.iter().skip(10).filter(|r| !r.feasible).count();
        assert!(infeasible >= 3, "iTuned produced only {infeasible} infeasible picks");
        // And its best feasible result trails what the same budget finds with
        // the constraint-aware acquisition.
        let mut cei = crate::method::run_method(
            crate::Method::RestuneWithoutML,
            TuningEnvironment::builder()
                .instance(InstanceType::A)
                .workload(WorkloadSpec::twitter())
                .resource(ResourceKind::Cpu)
                .knob_set(KnobSet::case_study())
                .seed(3)
                .build(),
            25,
            &crate::MethodContext {
                config: outcome_config(),
                repository: None,
                prepared_learners: None,
                setting: crate::method::Setting::Original,
                target_meta_feature: vec![0.2; 5],
            },
        );
        let _ = &mut cei;
        assert!(
            outcome.best_objective.unwrap() >= cei.best_objective.unwrap() - 5.0,
            "sanity: comparable scales"
        );
    }
}
