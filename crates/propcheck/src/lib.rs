//! A small, fully deterministic property-test harness.
//!
//! Replaces `proptest` for this workspace. A property is a closure over a
//! [`Gen`] that draws its own inputs and returns `Ok(())` or a failure
//! message (via [`prop_assert!`]/[`prop_assert_eq!`]). The runner executes a
//! fixed number of cases, each with a seed derived from the suite seed, and
//! ramps the `size` hint from small to large so early cases exercise tiny
//! inputs.
//!
//! Shrinking: when a case fails, the runner replays the *same case seed* at
//! every smaller size (0 upward) and reports the smallest size that still
//! fails. Because generation is a pure function of `(seed, size)`, the
//! reported `seed=…, size=…` pair in the panic message is sufficient to
//! reproduce a failure exactly — there is no persisted corpus and no
//! environment dependence.
//!
//! Panics inside a property (index-out-of-bounds, unwrap on None, explicit
//! `assert!`) are caught and treated as failures, like proptest did.

use std::panic::{catch_unwind, AssertUnwindSafe};

use xrand::rngs::StdRng;
use xrand::{RngExt, SeedableRng};

/// Runner configuration: how many cases, from which suite seed.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    cases: u32,
    seed: u64,
    max_size: usize,
}

impl Default for Config {
    fn default() -> Self {
        Config { cases: 64, seed: 0x5EED_CA5E, max_size: 24 }
    }
}

impl Config {
    /// Sets the suite seed (every test should pin its own).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the number of cases to run.
    pub fn cases(mut self, cases: u32) -> Self {
        self.cases = cases;
        self
    }

    /// Sets the size the ramp tops out at.
    pub fn max_size(mut self, max_size: usize) -> Self {
        self.max_size = max_size;
        self
    }
}

/// Input source for one property case: a seeded RNG plus a size hint.
pub struct Gen {
    rng: StdRng,
    size: usize,
}

impl Gen {
    /// A generator for one case, fully determined by `(seed, size)`.
    pub fn new(seed: u64, size: usize) -> Self {
        Gen { rng: StdRng::seed_from_u64(seed), size }
    }

    /// The case's size hint (ramped 1..=max_size across cases; shrinking
    /// replays at smaller values). Use it to scale dimensions.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Direct access to the underlying RNG for `xrand::RngExt` calls.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }

    /// A dimension in `1..=max(1, min(size, cap))` — the standard way to
    /// pick a matrix/vector size that shrinks with the case.
    pub fn dim(&mut self, cap: usize) -> usize {
        let hi = self.size.clamp(1, cap.max(1));
        self.usize_in(1, hi)
    }

    /// A uniform f64 in `[lo, hi)`.
    pub fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        self.rng.random_range(lo..hi)
    }

    /// A uniform f64 in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        self.rng.random::<f64>()
    }

    /// A uniform usize in `[lo, hi]` (inclusive).
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        self.rng.random_range(lo..=hi)
    }

    /// A uniform i64 in `[lo, hi]` (inclusive).
    pub fn i64_in(&mut self, lo: i64, hi: i64) -> i64 {
        self.rng.random_range(lo..=hi)
    }

    /// A fair coin flip.
    pub fn flag(&mut self) -> bool {
        self.rng.random::<bool>()
    }

    /// A vector of `n` uniform f64s in `[lo, hi)`.
    pub fn vec_f64(&mut self, n: usize, lo: f64, hi: f64) -> Vec<f64> {
        (0..n).map(|_| self.f64_in(lo, hi)).collect()
    }
}

/// The outcome type property closures return; `Err` carries the failure
/// message (normally produced by [`prop_assert!`]).
pub type PropResult = Result<(), String>;

/// Runs `prop` for `cfg.cases` cases, panicking with a reproducible
/// `seed=…, size=…` report on the first (shrunk) failure.
pub fn check<F>(name: &str, cfg: Config, prop: F)
where
    F: Fn(&mut Gen) -> PropResult,
{
    for case in 0..cfg.cases {
        let case_seed = case_seed(cfg.seed, case);
        let size = ramp(case, cfg.cases, cfg.max_size);
        if let Some(msg) = run_one(&prop, case_seed, size) {
            let (small, small_msg) = shrink(&prop, case_seed, size, msg);
            panic!(
                "property `{name}` failed: {small_msg}\n  reproduce: seed={case_seed:#018x}, size={small} \
                 (suite seed {:#x}, case {case}/{})",
                cfg.seed, cfg.cases
            );
        }
    }
}

/// Derives a per-case seed from the suite seed (splitmix64 step, so
/// neighbouring cases get well-separated streams).
fn case_seed(suite_seed: u64, case: u32) -> u64 {
    let mut z = suite_seed
        .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(u64::from(case) + 1));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Ramps size linearly from 1 up to `max_size` over the case schedule.
fn ramp(case: u32, cases: u32, max_size: usize) -> usize {
    if cases <= 1 {
        return max_size.max(1);
    }
    let t = f64::from(case) / f64::from(cases - 1);
    (1.0 + t * (max_size.saturating_sub(1)) as f64).round() as usize
}

/// Runs one case, converting both `Err` returns and panics into a message.
fn run_one<F>(prop: &F, seed: u64, size: usize) -> Option<String>
where
    F: Fn(&mut Gen) -> PropResult,
{
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        let mut g = Gen::new(seed, size);
        prop(&mut g)
    }));
    match outcome {
        Ok(Ok(())) => None,
        Ok(Err(msg)) => Some(msg),
        Err(payload) => Some(panic_message(payload)),
    }
}

/// Replays the failing case seed at sizes `0..failed_size`, returning the
/// smallest size that still fails (with its message).
fn shrink<F>(prop: &F, seed: u64, failed_size: usize, original: String) -> (usize, String)
where
    F: Fn(&mut Gen) -> PropResult,
{
    for size in 0..failed_size {
        if let Some(msg) = run_one(prop, seed, size) {
            return (size, msg);
        }
    }
    (failed_size, original)
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("panicked: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("panicked: {s}")
    } else {
        "panicked (non-string payload)".to_string()
    }
}

/// Fails the property with a message unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!(
                "assertion failed: {} ({}:{})",
                stringify!($cond),
                file!(),
                line!()
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!($($fmt)+));
        }
    };
}

/// Fails the property unless both sides compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err(format!(
                "assertion failed: `{:?} == {:?}` ({}:{})",
                l,
                r,
                file!(),
                line!()
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let mut seen = 0u32;
        let counter = std::cell::Cell::new(0u32);
        check("always_holds", Config::default().cases(40), |g| {
            counter.set(counter.get() + 1);
            let v = g.vec_f64(g.size().min(8), -1.0, 1.0);
            prop_assert!(v.iter().all(|x| x.abs() <= 1.0));
            Ok(())
        });
        seen += counter.get();
        assert_eq!(seen, 40);
    }

    #[test]
    fn generation_is_pure_in_seed_and_size() {
        let draw = |seed, size| {
            let mut g = Gen::new(seed, size);
            (g.dim(10), g.vec_f64(4, 0.0, 1.0), g.flag())
        };
        assert_eq!(draw(99, 7), draw(99, 7));
        assert_ne!(draw(99, 7), draw(100, 7));
    }

    #[test]
    fn failing_property_panics_with_repro_info() {
        let result = std::panic::catch_unwind(|| {
            check("always_fails", Config::default().cases(5), |_g| {
                prop_assert!(false, "intentional failure");
                Ok(())
            });
        });
        let msg = match result {
            Err(payload) => *payload.downcast::<String>().expect("string payload"),
            Ok(()) => panic!("property should have failed"),
        };
        assert!(msg.contains("always_fails"), "{msg}");
        assert!(msg.contains("seed="), "{msg}");
        assert!(msg.contains("intentional failure"), "{msg}");
    }

    #[test]
    fn shrinking_reports_smallest_failing_size() {
        let result = std::panic::catch_unwind(|| {
            check(
                "fails_at_any_size",
                Config::default().cases(3).max_size(20),
                |g| {
                    prop_assert!(g.size() > 100, "size {} too small", g.size());
                    Ok(())
                },
            );
        });
        let msg = match result {
            Err(payload) => *payload.downcast::<String>().expect("string payload"),
            Ok(()) => panic!("property should have failed"),
        };
        // Smallest failing size is 0 — the shrink loop must find it.
        assert!(msg.contains("size=0"), "{msg}");
    }

    #[test]
    fn panics_inside_properties_are_failures() {
        let result = std::panic::catch_unwind(|| {
            check("panics", Config::default().cases(2), |_g| {
                let empty: Vec<u8> = Vec::new();
                let _ = empty[3];
                Ok(())
            });
        });
        assert!(result.is_err());
    }

    #[test]
    fn dim_respects_cap_and_size() {
        for seed in 0..50u64 {
            let mut g = Gen::new(seed, 6);
            let d = g.dim(4);
            assert!((1..=4).contains(&d), "dim {d}");
        }
        let mut g = Gen::new(1, 0);
        assert_eq!(g.dim(10), 1, "size 0 clamps to 1");
    }
}
