//! # ResTune
//!
//! A from-scratch Rust reproduction of **ResTune: Resource Oriented Tuning
//! Boosted by Meta-Learning for Cloud Databases** (SIGMOD 2021).
//!
//! ResTune tunes DBMS configuration knobs to *minimize resource utilization*
//! (CPU, I/O, or memory) subject to SLA constraints on throughput and p99
//! latency, and accelerates tuning by transferring experience from historical
//! tuning tasks through a ranking-weighted Gaussian-process ensemble.
//!
//! This facade crate re-exports the workspace:
//!
//! * [`linalg`] — dense linear algebra (Cholesky) for the GP stack
//! * [`gp`] — Matérn-5/2 ARD Gaussian processes
//! * [`dbsim`] — the simulated cloud DBMS under test (knobs, instances,
//!   workloads, internal metrics)
//! * [`workload`] — workload characterization (TF-IDF + random forest
//!   meta-features)
//! * [`nn`] — MLP/DDPG substrate for the CDBTune baseline
//! * [`core`] — the ResTune tuner: constrained Bayesian optimization,
//!   meta-learner, data repository, SHAP, TCO
//! * [`baselines`] — iTuned, OtterTune-w-Con, CDBTune-w-Con, grid/LHS search
//!
//! ## Quickstart
//!
//! See `examples/quickstart.rs`; the short version:
//!
//! ```no_run
//! use restune::prelude::*;
//!
//! // A simulated MySQL-like instance running a SYSBENCH-style workload.
//! let env = TuningEnvironment::builder()
//!     .instance(InstanceType::A)
//!     .workload(WorkloadSpec::sysbench())
//!     .resource(ResourceKind::Cpu)
//!     .seed(7)
//!     .build();
//!
//! // Tune with defaults: CEI acquisition, meta-learning disabled (no history).
//! let mut session = TuningSession::new(env, RestuneConfig::default());
//! let outcome = session.run(50);
//! println!("best feasible CPU: {:.1}%", outcome.best_objective.unwrap());
//! ```

pub use baselines;
pub use dbsim;
pub use gp;
pub use linalg;
pub use nn;
pub use restune_core as core;
pub use workload;

/// Convenience re-exports covering the common tuning workflow.
pub mod prelude {
    pub use crate::core::acquisition::{AcquisitionKind, ConstrainedExpectedImprovement};
    pub use crate::core::meta::{MetaLearner, WeightStrategy};
    pub use crate::core::problem::{ResourceKind, SlaConstraints, TuningProblem};
    pub use crate::core::repository::{DataRepository, TaskRecord};
    pub use crate::core::tuner::{RestuneConfig, TuningEnvironment, TuningOutcome, TuningSession};
    pub use dbsim::{InstanceType, KnobRegistry, SimulatedDbms, WorkloadSpec};
    pub use workload::WorkloadCharacterizer;
}
