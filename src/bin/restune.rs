//! `restune` — command-line driver for the tuning library.
//!
//! ```text
//! restune tune  --workload twitter --instance A --resource cpu --iters 40
//!               [--repo history.json] [--save-repo history.json] [--seed 7]
//!               [--knobs extended] [--project 16] [--quantize 64]
//! restune grid  --workload twitter --instance A --levels 8
//! restune knobs [--resource cpu|io|memory]
//! ```
//!
//! `tune` runs a ResTune session (meta-boosted when `--repo` points at a
//! saved data repository) and prints the SLA report and recommended knobs;
//! `--save-repo` appends the finished task so future runs transfer from it.
//! `--project D` installs a seeded HeSBO random projection so the session
//! searches `[0,1]^D` instead of the full knob space (DESIGN.md §14), with
//! hybrid sentinel knobs biased-sampled; `--quantize B` additionally snaps
//! wide numeric knobs onto `B` bin centers. `--knobs extended` tunes the
//! whole 200-knob catalogue (the setting projections exist for).

use dbsim::{InstanceType, KnobSet, SimulatedDbms, WorkloadSpec};
use restune::core::problem::ResourceKind;
use restune::core::repository::{DataRepository, TaskObservation, TaskRecord};
use restune::core::tuner::{RestuneConfig, TuningEnvironment, TuningSession};
use std::collections::HashMap;
use std::path::Path;
use std::process::ExitCode;

fn parse_flags(args: &[String]) -> HashMap<String, String> {
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        if let Some(name) = args[i].strip_prefix("--") {
            let value = args.get(i + 1).cloned().unwrap_or_default();
            flags.insert(name.to_string(), value);
            i += 2;
        } else {
            i += 1;
        }
    }
    flags
}

fn workload_by_name(name: &str) -> Option<WorkloadSpec> {
    match name.to_ascii_lowercase().as_str() {
        "sysbench" => Some(WorkloadSpec::sysbench()),
        "tpcc" | "tpc-c" => Some(WorkloadSpec::tpcc()),
        "twitter" => Some(WorkloadSpec::twitter()),
        "hotel" => Some(WorkloadSpec::hotel()),
        "sales" => Some(WorkloadSpec::sales()),
        _ => None,
    }
}

fn instance_by_name(name: &str) -> Option<InstanceType> {
    InstanceType::ALL.iter().copied().find(|i| i.name().eq_ignore_ascii_case(name))
}

fn resource_by_name(name: &str) -> Option<ResourceKind> {
    match name.to_ascii_lowercase().as_str() {
        "cpu" => Some(ResourceKind::Cpu),
        "memory" | "mem" => Some(ResourceKind::Memory),
        "io" | "bps" | "io_bps" => Some(ResourceKind::IoBps),
        "iops" => Some(ResourceKind::Iops),
        _ => None,
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  restune tune  --workload <sysbench|tpcc|twitter|hotel|sales> \
         [--instance A..F] [--resource cpu|io|iops|memory] [--iters N] \
         [--seed N] [--repo FILE] [--save-repo FILE] [--knobs extended|expert] \
         [--project D] [--quantize B]\n  restune grid  \
         --workload <name> [--instance A..F] [--levels N]\n  restune knobs [--resource cpu|io|memory]"
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else { return usage() };
    let flags = parse_flags(&args[1..]);

    match command.as_str() {
        "tune" => cmd_tune(&flags),
        "grid" => cmd_grid(&flags),
        "knobs" => cmd_knobs(&flags),
        _ => usage(),
    }
}

fn cmd_tune(flags: &HashMap<String, String>) -> ExitCode {
    let Some(workload) = flags.get("workload").and_then(|w| workload_by_name(w)) else {
        eprintln!("error: --workload is required (sysbench|tpcc|twitter|hotel|sales)");
        return ExitCode::FAILURE;
    };
    let instance = flags
        .get("instance")
        .and_then(|i| instance_by_name(i))
        .unwrap_or(InstanceType::A);
    let resource = flags
        .get("resource")
        .and_then(|r| resource_by_name(r))
        .unwrap_or(ResourceKind::Cpu);
    let iters: usize = flags.get("iters").and_then(|v| v.parse().ok()).unwrap_or(40);
    let seed: u64 = flags.get("seed").and_then(|v| v.parse().ok()).unwrap_or(7);

    let knob_set = match flags.get("knobs").map(String::as_str) {
        Some("extended") => Some(KnobSet::extended()),
        Some("expert") => Some(KnobSet::expert()),
        Some(other) if !other.is_empty() => {
            eprintln!("error: unknown --knobs value {other} (extended|expert)");
            return ExitCode::FAILURE;
        }
        _ => None,
    };
    let project: Option<usize> = flags.get("project").and_then(|v| v.parse().ok());
    let quantize: Option<usize> = flags.get("quantize").and_then(|v| v.parse().ok());

    println!("tuning {} on {} for {} ({} iterations)", workload.name, instance, resource.name(), iters);
    let mut builder = TuningEnvironment::builder()
        .instance(instance)
        .workload(workload.clone())
        .resource(resource)
        .seed(seed);
    let native_set = knob_set.unwrap_or_else(|| resource.default_knob_set());
    builder = builder.knob_set(native_set.clone());
    if let Some(d) = project {
        if d == 0 || d > native_set.dim() {
            eprintln!("error: --project must be in 1..={}", native_set.dim());
            return ExitCode::FAILURE;
        }
        let transform = restune::core::space::projected_space(
            &native_set,
            restune::core::space::Projection::Hesbo,
            d,
            seed,
            quantize,
            Some(0.2),
        );
        println!("search space: {} ({} -> {} dims)", transform.id(), native_set.dim(), d);
        builder = builder.space(transform);
    } else if quantize.is_some() {
        eprintln!("error: --quantize requires --project");
        return ExitCode::FAILURE;
    }
    let env = builder.build();
    let space_id = match &env.space {
        Some(t) => t.id(),
        None => "native".to_string(),
    };
    let knob_set = env.knob_set.clone();
    let config = RestuneConfig { seed, ..Default::default() };

    // Meta-boosted when a repository is supplied.
    let outcome = match flags.get("repo").filter(|p| !p.is_empty()) {
        Some(path) => match DataRepository::load(Path::new(path)) {
            Ok(repo) => {
                println!("loaded repository: {} tasks, {} observations", repo.len(), repo.n_observations());
                let characterizer = workload::WorkloadCharacterizer::train_default(seed);
                let mf = characterizer.embed_workload(&workload, seed).probs;
                let gp_config = gp::GpConfig { restarts: 1, adam_iters: 25, ..Default::default() };
                let learners = repo.base_learners(&gp_config, |t| {
                    t.knob_names == knob_set.names()
                        && t.space_id == space_id
                        && t.resource == resource
                });
                println!("usable base-learners in this search space: {}", learners.len());
                TuningSession::with_base_learners(env, config, learners, mf).run(iters)
            }
            Err(e) => {
                eprintln!("error: could not load repository {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => TuningSession::new(env, config).run(iters),
    };

    println!("\nSLA: tps >= {:.0} txn/s, p99 <= {:.2} ms", outcome.sla.min_tps, outcome.sla.max_p99_ms);
    println!("default {}: {:.2} {}", resource.name(), outcome.default_objective(), resource.unit());
    match outcome.best_objective {
        Some(best) => println!(
            "best feasible {}: {:.2} {} ({:.1}% reduction, found at iteration {:?})",
            resource.name(),
            best,
            resource.unit(),
            outcome.improvement() * 100.0,
            outcome.best_iteration
        ),
        None => println!("no feasible improvement found"),
    }
    println!();
    print!("{}", restune::core::advisor::report(&outcome, &knob_set, resource));

    if let Some(path) = flags.get("save-repo").filter(|p| !p.is_empty()) {
        let mut repo = DataRepository::load(Path::new(path)).unwrap_or_default();
        let characterizer = workload::WorkloadCharacterizer::train_default(seed);
        let meta_feature = characterizer.embed_workload(&workload, seed).probs;
        let observations: Vec<TaskObservation> = outcome
            .history
            .iter()
            .map(|r| TaskObservation {
                point: r.point.clone(),
                res: r.objective,
                tps: r.observation.tps,
                lat: r.observation.p99_ms,
                metrics: r.observation.internal.to_vec(),
            })
            .collect();
        repo.add(TaskRecord {
            task_id: format!("{}@{}", workload.name, instance.name()),
            workload: workload.name.clone(),
            instance,
            resource,
            knob_names: knob_set.names().to_vec(),
            space_id: space_id.clone(),
            meta_feature,
            observations,
        });
        match repo.save(Path::new(path)) {
            Ok(()) => println!("\nsaved task history to {path} ({} tasks total)", repo.len()),
            Err(e) => eprintln!("warning: could not save repository: {e}"),
        }
    }
    ExitCode::SUCCESS
}

fn cmd_grid(flags: &HashMap<String, String>) -> ExitCode {
    let Some(workload) = flags.get("workload").and_then(|w| workload_by_name(w)) else {
        eprintln!("error: --workload is required");
        return ExitCode::FAILURE;
    };
    let instance =
        flags.get("instance").and_then(|i| instance_by_name(i)).unwrap_or(InstanceType::A);
    let levels: usize = flags.get("levels").and_then(|v| v.parse().ok()).unwrap_or(8);
    let dbms = SimulatedDbms::new(instance, workload, 0).with_noise(0.0);
    let result =
        baselines::grid_search(&dbms, &KnobSet::case_study(), ResourceKind::Cpu, levels);
    println!(
        "grid {}^3 = {} cells, {} feasible; best feasible CPU {:.2}%",
        levels, result.evaluated, result.feasible, result.best_objective
    );
    for name in KnobSet::case_study().names() {
        println!("  {name:<34} {}", result.best_config.get(name));
    }
    ExitCode::SUCCESS
}

fn cmd_knobs(flags: &HashMap<String, String>) -> ExitCode {
    let set = match flags.get("resource").map(|s| s.as_str()) {
        Some("io") => KnobSet::io(),
        Some("memory" | "mem") => KnobSet::memory(),
        Some(_) | None => KnobSet::cpu(),
    };
    println!("{:<34} {:>10} {:>10} {:>10}  description", "knob", "min", "max", "default");
    for def in set.defs() {
        println!(
            "{:<34} {:>10} {:>10} {:>10}  {}",
            def.name, def.min, def.max, def.default, def.description
        );
    }
    ExitCode::SUCCESS
}
